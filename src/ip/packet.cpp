#include "ip/packet.hpp"

#include <algorithm>

namespace mrmtp::ip {

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i] << 8);
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

std::vector<std::uint8_t> Ipv4Header::serialize(
    std::span<const std::uint8_t> payload) const {
  if (options.size() % 4 != 0 || options.size() > kMaxSize - kSize) {
    throw util::CodecError("IPv4: options must be 0..40 bytes in 32-bit words");
  }
  const std::size_t hlen = header_length();
  util::BufWriter w(hlen + payload.size());
  w.u8(static_cast<std::uint8_t>(0x40 | (hlen / 4)));
  w.u8(tos);
  w.u16(static_cast<std::uint16_t>(hlen + payload.size()));
  w.u16(identification);
  w.u16(0x4000);  // DF, no fragmentation in this fabric
  w.u8(ttl);
  w.u8(static_cast<std::uint8_t>(protocol));
  w.u16(0);  // checksum placeholder
  w.u32(src.value());
  w.u32(dst.value());
  w.bytes(options);
  std::uint16_t csum = internet_checksum(
      std::span<const std::uint8_t>(w.data().data(), hlen));
  auto out = w.take();
  out[10] = static_cast<std::uint8_t>(csum >> 8);
  out[11] = static_cast<std::uint8_t>(csum & 0xff);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

net::Buffer Ipv4Header::encapsulate(net::Buffer payload) const {
  if (options.size() % 4 != 0 || options.size() > kMaxSize - kSize) {
    throw util::CodecError("IPv4: options must be 0..40 bytes in 32-bit words");
  }
  const std::size_t hlen = header_length();
  std::uint8_t hdr[kMaxSize];
  hdr[0] = static_cast<std::uint8_t>(0x40 | (hlen / 4));
  hdr[1] = tos;
  const auto total = static_cast<std::uint16_t>(hlen + payload.size());
  hdr[2] = static_cast<std::uint8_t>(total >> 8);
  hdr[3] = static_cast<std::uint8_t>(total & 0xff);
  hdr[4] = static_cast<std::uint8_t>(identification >> 8);
  hdr[5] = static_cast<std::uint8_t>(identification & 0xff);
  hdr[6] = 0x40;  // DF, no fragmentation in this fabric
  hdr[7] = 0x00;
  hdr[8] = ttl;
  hdr[9] = static_cast<std::uint8_t>(protocol);
  hdr[10] = 0;  // checksum placeholder
  hdr[11] = 0;
  const std::uint32_t s = src.value();
  const std::uint32_t d = dst.value();
  hdr[12] = static_cast<std::uint8_t>(s >> 24);
  hdr[13] = static_cast<std::uint8_t>((s >> 16) & 0xff);
  hdr[14] = static_cast<std::uint8_t>((s >> 8) & 0xff);
  hdr[15] = static_cast<std::uint8_t>(s & 0xff);
  hdr[16] = static_cast<std::uint8_t>(d >> 24);
  hdr[17] = static_cast<std::uint8_t>((d >> 16) & 0xff);
  hdr[18] = static_cast<std::uint8_t>((d >> 8) & 0xff);
  hdr[19] = static_cast<std::uint8_t>(d & 0xff);
  std::copy(options.begin(), options.end(), hdr + kSize);
  const std::uint16_t csum =
      internet_checksum(std::span<const std::uint8_t>(hdr, hlen));
  hdr[10] = static_cast<std::uint8_t>(csum >> 8);
  hdr[11] = static_cast<std::uint8_t>(csum & 0xff);
  payload.prepend(std::span<const std::uint8_t>(hdr, hlen));
  return payload;
}

void Ipv4Header::decrement_ttl(net::Buffer& packet) {
  if (packet.size() < kSize) throw util::CodecError("IPv4: header truncated");
  std::uint8_t* p = packet.mutable_data();
  const std::size_t ihl = static_cast<std::size_t>(p[0] & 0xf) * 4;
  if (ihl < kSize) throw util::CodecError("IPv4: IHL below 5");
  if (ihl > packet.size()) throw util::CodecError("IPv4: header truncated");
  --p[8];
  p[10] = 0;
  p[11] = 0;
  const std::uint16_t csum =
      internet_checksum(std::span<const std::uint8_t>(p, ihl));
  p[10] = static_cast<std::uint8_t>(csum >> 8);
  p[11] = static_cast<std::uint8_t>(csum & 0xff);
}

Ipv4Header Ipv4Header::parse(std::span<const std::uint8_t> data,
                             std::span<const std::uint8_t>& out_payload) {
  util::BufReader r(data);
  std::uint8_t ver_ihl = r.u8();
  if ((ver_ihl >> 4) != 4) throw util::CodecError("IPv4: bad version");
  std::size_t ihl = static_cast<std::size_t>(ver_ihl & 0xf) * 4;
  if (ihl < kSize) throw util::CodecError("IPv4: IHL below 5");
  if (ihl > data.size()) throw util::CodecError("IPv4: header truncated");

  Ipv4Header h;
  h.tos = r.u8();
  std::uint16_t total_length = r.u16();
  h.identification = r.u16();
  r.u16();  // flags/frag
  h.ttl = r.u8();
  h.protocol = static_cast<IpProto>(r.u8());
  r.u16();  // checksum (verified over the whole header below)
  h.src = Ipv4Addr(r.u32());
  h.dst = Ipv4Addr(r.u32());
  h.options.assign(data.begin() + kSize, data.begin() + ihl);

  if (total_length < ihl || total_length > data.size()) {
    throw util::CodecError("IPv4: bad total length");
  }
  if (internet_checksum(data.subspan(0, ihl)) != 0) {
    throw util::CodecError("IPv4: header checksum mismatch");
  }
  out_payload = data.subspan(ihl, total_length - ihl);
  return h;
}

std::size_t Ipv4Header::payload_offset(std::span<const std::uint8_t> packet) {
  if (packet.empty()) throw util::CodecError("IPv4: empty packet");
  std::size_t ihl = static_cast<std::size_t>(packet[0] & 0xf) * 4;
  if (ihl < kSize) throw util::CodecError("IPv4: IHL below 5");
  return ihl;
}

}  // namespace mrmtp::ip
