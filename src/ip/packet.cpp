#include "ip/packet.hpp"

namespace mrmtp::ip {

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i] << 8);
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

std::vector<std::uint8_t> Ipv4Header::serialize(
    std::span<const std::uint8_t> payload) const {
  util::BufWriter w(kSize + payload.size());
  w.u8(0x45);  // version 4, IHL 5
  w.u8(tos);
  w.u16(static_cast<std::uint16_t>(kSize + payload.size()));
  w.u16(identification);
  w.u16(0x4000);  // DF, no fragmentation in this fabric
  w.u8(ttl);
  w.u8(static_cast<std::uint8_t>(protocol));
  w.u16(0);  // checksum placeholder
  w.u32(src.value());
  w.u32(dst.value());
  std::uint16_t csum = internet_checksum(
      std::span<const std::uint8_t>(w.data().data(), kSize));
  auto out = w.take();
  out[10] = static_cast<std::uint8_t>(csum >> 8);
  out[11] = static_cast<std::uint8_t>(csum & 0xff);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Ipv4Header Ipv4Header::parse(std::span<const std::uint8_t> data,
                             std::span<const std::uint8_t>& out_payload) {
  util::BufReader r(data);
  std::uint8_t ver_ihl = r.u8();
  if ((ver_ihl >> 4) != 4) throw util::CodecError("IPv4: bad version");
  std::size_t ihl = static_cast<std::size_t>(ver_ihl & 0xf) * 4;
  if (ihl != kSize) throw util::CodecError("IPv4: options unsupported");

  Ipv4Header h;
  h.tos = r.u8();
  std::uint16_t total_length = r.u16();
  h.identification = r.u16();
  r.u16();  // flags/frag
  h.ttl = r.u8();
  h.protocol = static_cast<IpProto>(r.u8());
  r.u16();  // checksum (verified over the whole header below)
  h.src = Ipv4Addr(r.u32());
  h.dst = Ipv4Addr(r.u32());

  if (total_length < kSize || total_length > data.size()) {
    throw util::CodecError("IPv4: bad total length");
  }
  if (internet_checksum(data.subspan(0, kSize)) != 0) {
    throw util::CodecError("IPv4: header checksum mismatch");
  }
  out_payload = data.subspan(kSize, total_length - kSize);
  return h;
}

}  // namespace mrmtp::ip
