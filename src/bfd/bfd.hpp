// Bidirectional Forwarding Detection (RFC 5880), asynchronous mode.
//
// The paper enables BFD under BGP with a 100 ms transmit interval and detect
// multiplier 3 (300 ms dead time). Control packets are the real 24-byte
// format carried in UDP/IP, so each one costs 14+20+8+24 = 66 bytes at L2 —
// the size visible in the paper's Fig. 9 capture.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "sim/random.hpp"
#include "transport/l3_node.hpp"

namespace mrmtp::bfd {

constexpr std::uint16_t kBfdPort = 3784;

enum class BfdState : std::uint8_t {
  kAdminDown = 0,
  kDown = 1,
  kInit = 2,
  kUp = 3,
};

[[nodiscard]] std::string_view to_string(BfdState s);

/// RFC 5880 section 4.1 control packet (mandatory section only).
struct BfdPacket {
  static constexpr std::size_t kSize = 24;

  BfdState state = BfdState::kDown;
  std::uint8_t detect_mult = 3;
  std::uint32_t my_discriminator = 0;
  std::uint32_t your_discriminator = 0;
  std::uint32_t desired_min_tx_us = 100000;
  std::uint32_t required_min_rx_us = 100000;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static BfdPacket parse(std::span<const std::uint8_t> data);
};

class BfdSession {
 public:
  struct Config {
    sim::Duration tx_interval = sim::Duration::millis(100);
    int detect_mult = 3;
  };

  /// `on_state_change(up)` fires on every Up <-> Down transition.
  using StateCallback = std::function<void(bool up)>;

  BfdSession(transport::L3Node& node, ip::Ipv4Addr local, ip::Ipv4Addr peer,
             Config config, StateCallback on_state_change,
             std::uint32_t discriminator);

  void start();
  void stop();

  /// Moves the tx-jitter draws onto a private stream so they depend only on
  /// this session's own send order (sharded-run determinism). Call before
  /// start().
  void use_stream_rng(std::uint64_t seed) { rng_.emplace(seed); }

  void handle_packet(const BfdPacket& pkt);

  [[nodiscard]] BfdState state() const { return state_; }
  [[nodiscard]] ip::Ipv4Addr peer() const { return peer_; }
  [[nodiscard]] sim::Duration detection_time() const {
    return config_.tx_interval * config_.detect_mult;
  }

 private:
  void send_control();
  void arm_tx();
  void set_state(BfdState s);
  void arm_detect();

  transport::L3Node& node_;
  ip::Ipv4Addr local_;
  ip::Ipv4Addr peer_;
  Config config_;
  StateCallback on_state_change_;
  std::uint32_t discriminator_;
  std::uint32_t remote_discriminator_ = 0;

  BfdState state_ = BfdState::kDown;
  std::optional<sim::Rng> rng_;  // empty: draw from the node's shared rng
  sim::Timer tx_timer_;
  sim::Timer detect_timer_;
};

/// Owns all BFD sessions of one router and demuxes UDP 3784 by source.
class BfdManager {
 public:
  explicit BfdManager(transport::L3Node& node);

  BfdSession& create_session(ip::Ipv4Addr local, ip::Ipv4Addr peer,
                             BfdSession::Config config,
                             BfdSession::StateCallback on_state_change);

  [[nodiscard]] BfdSession* find(ip::Ipv4Addr peer);
  [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }

 private:
  transport::L3Node& node_;
  std::vector<std::unique_ptr<BfdSession>> sessions_;
  std::uint32_t next_discriminator_ = 1;
};

}  // namespace mrmtp::bfd
