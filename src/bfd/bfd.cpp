#include "bfd/bfd.hpp"

namespace mrmtp::bfd {

std::string_view to_string(BfdState s) {
  switch (s) {
    case BfdState::kAdminDown: return "AdminDown";
    case BfdState::kDown: return "Down";
    case BfdState::kInit: return "Init";
    case BfdState::kUp: return "Up";
  }
  return "?";
}

std::vector<std::uint8_t> BfdPacket::serialize() const {
  util::BufWriter w(kSize);
  w.u8(0x20);  // version 1, diag 0
  w.u8(static_cast<std::uint8_t>(static_cast<std::uint8_t>(state) << 6));
  w.u8(detect_mult);
  w.u8(kSize);
  w.u32(my_discriminator);
  w.u32(your_discriminator);
  w.u32(desired_min_tx_us);
  w.u32(required_min_rx_us);
  w.u32(0);  // required min echo rx: echo mode unused
  return w.take();
}

BfdPacket BfdPacket::parse(std::span<const std::uint8_t> data) {
  util::BufReader r(data);
  BfdPacket p;
  std::uint8_t vers_diag = r.u8();
  if ((vers_diag >> 5) != 1) throw util::CodecError("BFD: bad version");
  p.state = static_cast<BfdState>(r.u8() >> 6);
  p.detect_mult = r.u8();
  std::uint8_t length = r.u8();
  if (length != kSize) throw util::CodecError("BFD: bad length");
  p.my_discriminator = r.u32();
  p.your_discriminator = r.u32();
  p.desired_min_tx_us = r.u32();
  p.required_min_rx_us = r.u32();
  r.u32();  // echo rx
  return p;
}

BfdSession::BfdSession(transport::L3Node& node, ip::Ipv4Addr local,
                       ip::Ipv4Addr peer, Config config,
                       StateCallback on_state_change,
                       std::uint32_t discriminator)
    : node_(node),
      local_(local),
      peer_(peer),
      config_(config),
      on_state_change_(std::move(on_state_change)),
      discriminator_(discriminator),
      tx_timer_(node.sim().sched, [this] {
        arm_tx();
        send_control();
      }),
      detect_timer_(node.sim().sched, [this] {
        // Detection time expired without a control packet: neighbor dead.
        if (state_ == BfdState::kUp || state_ == BfdState::kInit) {
          set_state(BfdState::kDown);
        }
      }) {}

void BfdSession::start() {
  state_ = BfdState::kDown;
  arm_tx();
  send_control();
}

void BfdSession::arm_tx() {
  // RFC 5880 section 6.8.7: apply 75..100% jitter to the transmit interval
  // so control packets never self-synchronize.
  std::uint64_t span = static_cast<std::uint64_t>(config_.tx_interval.ns() / 4);
  sim::Rng& rng = rng_ ? *rng_ : node_.sim().rng;
  sim::Duration interval =
      config_.tx_interval -
      sim::Duration::nanos(static_cast<std::int64_t>(
          span == 0 ? 0 : rng.below(span)));
  tx_timer_.start(interval);
}

void BfdSession::stop() {
  tx_timer_.stop();
  detect_timer_.stop();
  state_ = BfdState::kAdminDown;
}

void BfdSession::handle_packet(const BfdPacket& pkt) {
  if (state_ == BfdState::kAdminDown) return;
  remote_discriminator_ = pkt.my_discriminator;

  switch (state_) {
    case BfdState::kDown:
      if (pkt.state == BfdState::kDown) {
        set_state(BfdState::kInit);
      } else if (pkt.state == BfdState::kInit) {
        set_state(BfdState::kUp);
      }
      break;
    case BfdState::kInit:
      if (pkt.state == BfdState::kInit || pkt.state == BfdState::kUp) {
        set_state(BfdState::kUp);
      }
      break;
    case BfdState::kUp:
      if (pkt.state == BfdState::kDown || pkt.state == BfdState::kAdminDown) {
        set_state(BfdState::kDown);
      }
      break;
    case BfdState::kAdminDown:
      break;
  }
  if (state_ == BfdState::kUp || state_ == BfdState::kInit) arm_detect();
}

void BfdSession::send_control() {
  BfdPacket pkt;
  pkt.state = state_;
  pkt.detect_mult = static_cast<std::uint8_t>(config_.detect_mult);
  pkt.my_discriminator = discriminator_;
  pkt.your_discriminator = remote_discriminator_;
  pkt.desired_min_tx_us =
      static_cast<std::uint32_t>(config_.tx_interval.to_micros());
  pkt.required_min_rx_us = pkt.desired_min_tx_us;
  node_.send_udp(local_, peer_, kBfdPort, kBfdPort, pkt.serialize(),
                 net::TrafficClass::kBfd);
}

void BfdSession::set_state(BfdState s) {
  if (s == state_) return;
  bool was_up = state_ == BfdState::kUp;
  state_ = s;
  if (s == BfdState::kUp) {
    arm_detect();
    if (on_state_change_) on_state_change_(true);
  } else if (was_up) {
    detect_timer_.stop();
    if (on_state_change_) on_state_change_(false);
  }
}

void BfdSession::arm_detect() {
  detect_timer_.start(config_.tx_interval * config_.detect_mult);
}

BfdManager::BfdManager(transport::L3Node& node) : node_(node) {
  node_.bind_udp(kBfdPort, [this](ip::Ipv4Addr src, ip::Ipv4Addr dst,
                                  const transport::UdpHeader& hdr,
                                  std::span<const std::uint8_t> payload) {
    (void)dst;
    (void)hdr;
    BfdSession* session = find(src);
    if (session == nullptr) return;
    try {
      session->handle_packet(BfdPacket::parse(payload));
    } catch (const util::CodecError&) {
      // Malformed control packets are dropped per RFC 5880 section 6.8.6.
    }
  });
}

BfdSession& BfdManager::create_session(ip::Ipv4Addr local, ip::Ipv4Addr peer,
                                       BfdSession::Config config,
                                       BfdSession::StateCallback on_change) {
  sessions_.push_back(std::make_unique<BfdSession>(
      node_, local, peer, config, std::move(on_change), next_discriminator_++));
  return *sessions_.back();
}

BfdSession* BfdManager::find(ip::Ipv4Addr peer) {
  for (auto& s : sessions_) {
    if (s->peer() == peer) return s.get();
  }
  return nullptr;
}

}  // namespace mrmtp::bfd
