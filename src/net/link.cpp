#include "net/link.hpp"

#include <stdexcept>
#include <utility>

namespace mrmtp::net {

Link::Link(SimContext& ctx, Port& a, Port& b, Params params)
    : ctx_(ctx), a_(&a), b_(&b), params_(params) {
  if (a.link_ != nullptr || b.link_ != nullptr) {
    throw std::logic_error("Link: port already wired (" + a.str() + " / " +
                           b.str() + ")");
  }
  a.link_ = this;
  b.link_ = this;
}

void Link::transmit(Port& from, Frame frame) {
  if (&from != a_ && &from != b_) {
    throw std::logic_error("Link::transmit from foreign port");
  }
  if (!from.admin_up()) {
    ++stats_.dropped_link_down;
    return;
  }
  from.tx_stats().record(frame);

  Port& to = other(from);
  int dir = (&from == a_) ? 0 : 1;

  // Tail drop: the output queue (expressed as serialization backlog) is
  // full when the transmitter is more than max_queue behind.
  if (busy_until_[dir] > ctx_.now() + params_.max_queue) {
    ++stats_.dropped_queue_full;
    return;
  }

  // Serialization occupies the transmitter; back-to-back frames queue.
  // 20 bytes of preamble + inter-frame gap per frame, as on real Ethernet.
  std::uint64_t wire_bits = (frame.padded_wire_size() + 20) * 8;
  auto ser = sim::Duration::nanos(static_cast<std::int64_t>(
      (wire_bits * 1000000000ull) / params_.bandwidth_bps));
  sim::Time start = std::max(ctx_.now(), busy_until_[dir]);
  busy_until_[dir] = start + ser;
  sim::Time arrival = busy_until_[dir] + params_.delay;

  if (params_.reorder_jitter > sim::Duration{}) {
    arrival = arrival + sim::Duration::nanos(static_cast<std::int64_t>(
                  ctx_.rng.below(static_cast<std::uint64_t>(
                      params_.reorder_jitter.ns()))));
  }

  bool duplicate = params_.duplicate_probability > 0 &&
                   ctx_.rng.chance(params_.duplicate_probability);
  if (params_.loss_probability > 0 && ctx_.rng.chance(params_.loss_probability)) {
    ++stats_.dropped_impairment;
    if (!duplicate) return;
    duplicate = false;  // the "copy" survives as the only delivery
  }

  ctx_.sched.schedule_at(arrival, [this, &to, frame]() mutable {
    deliver(to, std::move(frame));
  });
  if (duplicate) {
    ++stats_.duplicated;
    Frame copy = *&frame;
    ctx_.sched.schedule_at(arrival + sim::Duration::micros(1),
                           [this, &to, copy]() mutable {
                             deliver(to, std::move(copy));
                           });
  }
}

void Link::deliver(Port& to, Frame frame) {
  if (!to.admin_up()) {
    ++stats_.dropped_dst_down;
    return;
  }
  ++stats_.delivered;
  if (tap_) tap_(ctx_.now(), frame);
  to.rx_stats().record(frame);
  to.owner().handle_frame(to, std::move(frame));
}

}  // namespace mrmtp::net
