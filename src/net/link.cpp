#include "net/link.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace mrmtp::net {

Link::Link(SimContext& ctx, Port& a, Port& b, Params params)
    : ctx_(ctx), a_(&a), b_(&b), params_(params) {
  if (a.link_ != nullptr || b.link_ != nullptr) {
    throw std::logic_error("Link: port already wired (" + a.str() + " / " +
                           b.str() + ")");
  }
  a.link_ = this;
  b.link_ = this;
}

void Link::set_loss(Dir dir, double p) {
  Impairments& im = impair_[static_cast<int>(dir)];
  im.loss = std::clamp(p, 0.0, 1.0);
  im.ramp_over = sim::Duration{};  // immediate: no ramp in progress
  im.ramp_from = im.loss;
}

void Link::set_blackhole(Dir dir, bool on) {
  impair_[static_cast<int>(dir)].blackhole = on;
}

void Link::ramp_loss(Dir dir, double target, sim::Duration over) {
  Impairments& im = impair_[static_cast<int>(dir)];
  im.ramp_from = effective_loss(dir);
  im.loss = std::clamp(target, 0.0, 1.0);
  im.ramp_start = ctx_.now();
  im.ramp_over = over;
}

void Link::clear_impairments() {
  impair_[0] = Impairments{};
  impair_[1] = Impairments{};
}

double Link::effective_loss(Dir dir) const {
  const Impairments& im = impair_[static_cast<int>(dir)];
  if (im.ramp_over <= sim::Duration{}) return im.loss;
  sim::Duration elapsed = ctx_.now() - im.ramp_start;
  if (elapsed >= im.ramp_over) return im.loss;
  if (elapsed <= sim::Duration{}) return im.ramp_from;
  double f = static_cast<double>(elapsed.ns()) /
             static_cast<double>(im.ramp_over.ns());
  return im.ramp_from + (im.loss - im.ramp_from) * f;
}

void Link::transmit(Port& from, Frame frame) {
  if (&from != a_ && &from != b_) {
    throw std::logic_error("Link::transmit from foreign port");
  }
  Dir direction = direction_from(from);
  DirStats& dstats = dir_stats(direction);

  if (!from.admin_up()) {
    ++dstats.dropped_link_down;
    return;
  }
  from.tx_stats().record(frame);

  Port& to = other(from);
  int dir = static_cast<int>(direction);

  // Tail drop: the output queue (expressed as serialization backlog) is
  // full when the transmitter is more than max_queue behind.
  if (busy_until_[dir] > ctx_.now() + params_.max_queue) {
    ++dstats.dropped_queue_full;
    return;
  }

  // Serialization occupies the transmitter; back-to-back frames queue.
  // 20 bytes of preamble + inter-frame gap per frame, as on real Ethernet.
  std::uint64_t wire_bits = (frame.padded_wire_size() + 20) * 8;
  auto ser = sim::Duration::nanos(static_cast<std::int64_t>(
      (wire_bits * 1000000000ull) / params_.bandwidth_bps));
  sim::Time start = std::max(ctx_.now(), busy_until_[dir]);
  busy_until_[dir] = start + ser;
  sim::Time arrival = busy_until_[dir] + params_.delay;

  // Gray failures kill the frame after the sender's transmitter did its
  // normal work — the sending side observes nothing locally.
  const Impairments& im = impair_[dir];
  if (im.blackhole) {
    ++dstats.dropped_blackhole;
    return;
  }

  if (params_.reorder_jitter > sim::Duration{}) {
    arrival = arrival + sim::Duration::nanos(static_cast<std::int64_t>(
                  ctx_.rng.below(static_cast<std::uint64_t>(
                      params_.reorder_jitter.ns()))));
  }

  bool duplicate = params_.duplicate_probability > 0 &&
                   ctx_.rng.chance(params_.duplicate_probability);
  bool lost = params_.loss_probability > 0 &&
              ctx_.rng.chance(params_.loss_probability);
  if (!lost && (im.loss > 0 || im.ramp_over > sim::Duration{})) {
    lost = ctx_.rng.chance(effective_loss(direction));
  }
  if (lost) {
    ++dstats.dropped_impairment;
    if (!duplicate) return;
    duplicate = false;  // the "copy" survives as the only delivery
  }

  if (duplicate) {
    // Schedule the duplicate first so the primary delivery below can still
    // move the frame; the copy shares the payload slab (refcount bump), and
    // that second reference is exactly what blocks in-place mutation of the
    // delivered bytes until the duplicate lands.
    ++dstats.duplicated;
    Frame copy = frame;
    ctx_.sched.schedule_at(arrival + sim::Duration::micros(1),
                           [this, &to, &dstats, copy = std::move(copy)]() mutable {
                             deliver(to, std::move(copy), dstats);
                           });
  }
  // The last/only delivery moves the frame — no payload copy on transit.
  ctx_.sched.schedule_at(arrival,
                         [this, &to, &dstats, frame = std::move(frame)]() mutable {
                           deliver(to, std::move(frame), dstats);
                         });
}

void Link::deliver(Port& to, Frame frame, DirStats& dstats) {
  if (!to.admin_up()) {
    ++dstats.dropped_dst_down;
    return;
  }
  ++dstats.delivered;
  if (tap_) tap_(ctx_.now(), frame);
  to.rx_stats().record(frame);
  to.owner().handle_frame(to, std::move(frame));
}

}  // namespace mrmtp::net
