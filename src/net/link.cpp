#include "net/link.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "net/switch_buffer.hpp"
#include "sim/parallel.hpp"

namespace mrmtp::net {

Link::Link(SimContext& ctx, Port& a, Port& b, Params params)
    : a_(&a), b_(&b), params_(params), stats_(&ctx.stats.alloc_link()) {
  // Endpoint contexts are authoritative for scheduling; `ctx` (the wiring
  // context) owns this link's slab-allocated counters.
  if (a.link_ != nullptr || b.link_ != nullptr) {
    throw std::logic_error("Link: port already wired (" + a.str() + " / " +
                           b.str() + ")");
  }
  end_ctx_[0] = &a.owner().ctx();
  end_ctx_[1] = &b.owner().ctx();
  a.link_ = this;
  b.link_ = this;
}

void Link::set_loss(Dir dir, double p) {
  Impairments& im = impair_[static_cast<int>(dir)];
  im.loss = std::clamp(p, 0.0, 1.0);
  im.ramp_over = sim::Duration{};  // immediate: no ramp in progress
  im.ramp_from = im.loss;
}

void Link::set_blackhole(Dir dir, bool on) {
  impair_[static_cast<int>(dir)].blackhole = on;
}

void Link::ramp_loss(Dir dir, double target, sim::Duration over) {
  Impairments& im = impair_[static_cast<int>(dir)];
  im.ramp_from = effective_loss(dir);
  im.loss = std::clamp(target, 0.0, 1.0);
  im.ramp_start = send_ctx(static_cast<int>(dir)).now();
  im.ramp_over = over;
}

void Link::clear_impairments() {
  impair_[0] = Impairments{};
  impair_[1] = Impairments{};
}

void Link::clear_impairments(Dir dir) {
  impair_[static_cast<int>(dir)] = Impairments{};
}

void Link::use_stream_rng(std::uint64_t seed) {
  sim::Rng base(seed);
  stream_rng_[0].emplace(base.fork());
  stream_rng_[1].emplace(base.fork());
}

sim::Rng& Link::dir_rng(int dir) {
  return stream_rng_[dir] ? *stream_rng_[dir] : send_ctx(dir).rng;
}

void Link::schedule_delivery(int dir, sim::Time at, sim::Scheduler::Callback fn) {
  SimContext& snd = send_ctx(dir);
  SimContext& rcv = recv_ctx(dir);
  if (snd.bus == nullptr) {
    if (&snd != &rcv) {
      throw std::logic_error(
          "Link: endpoints on different contexts but no ShardBus wired");
    }
    snd.sched.schedule_at(at, std::move(fn));
    return;
  }
  // Sharded run: every delivery is keyed by (sender node, sender port,
  // send sequence) so the destination scheduler breaks same-instant ties
  // identically at any shard count. Same-shard deliveries go straight into
  // the destination scheduler; only true cross-shard frames ride the bus,
  // which is what lets the engine derive lookahead from the actual
  // inter-shard links instead of the global minimum over ALL links.
  const Port& sender = dir == static_cast<int>(Dir::kAToB) ? *a_ : *b_;
  std::uint64_t order =
      (static_cast<std::uint64_t>(sender.owner().id()) << 48) |
      (static_cast<std::uint64_t>(sender.number()) << 32) |
      tx_seq_[dir]++;
  if (snd.shard == rcv.shard) {
    rcv.sched.schedule_at_ordered(at, order, std::move(fn));
    return;
  }
  snd.bus->post(snd.shard, rcv.shard, at, order, std::move(fn));
}

double Link::effective_loss(Dir dir) const {
  const Impairments& im = impair_[static_cast<int>(dir)];
  if (im.ramp_over <= sim::Duration{}) return im.loss;
  sim::Duration elapsed = send_ctx(static_cast<int>(dir)).now() - im.ramp_start;
  if (elapsed >= im.ramp_over) return im.loss;
  if (elapsed <= sim::Duration{}) return im.ramp_from;
  double f = static_cast<double>(elapsed.ns()) /
             static_cast<double>(im.ramp_over.ns());
  return im.ramp_from + (im.loss - im.ramp_from) * f;
}

sim::Duration Link::ser_time(const Frame& frame) const {
  // 20 bytes of preamble + inter-frame gap per frame, as on real Ethernet.
  std::uint64_t wire_bits = (frame.padded_wire_size() + 20) * 8;
  return sim::Duration::nanos(static_cast<std::int64_t>(
      (wire_bits * 1000000000ull) / params_.bandwidth_bps));
}

void Link::transmit(Port& from, Frame frame) {
  if (&from != a_ && &from != b_) {
    throw std::logic_error("Link::transmit from foreign port");
  }
  Dir direction = direction_from(from);
  DirStats& dstats = dir_stats(direction);

  if (!from.admin_up()) {
    ++dstats.dropped_link_down;
    return;
  }
  from.tx_stats().record(frame);

  int dir = static_cast<int>(direction);
  if (SwitchBuffer* sb = from.owner().switch_buffer()) {
    transmit_buffered(dir, std::move(frame), *sb);
    return;
  }
  if (params_.priority_queues) {
    transmit_priority(dir, std::move(frame));
    return;
  }

  // Shared FIFO: tail drop when the output queue (expressed as serialization
  // backlog) is full, i.e. the transmitter is more than max_queue behind.
  sim::Time now = send_ctx(dir).now();
  sim::Duration backlog =
      busy_until_[dir] > now ? busy_until_[dir] - now : sim::Duration{};
  if (backlog > params_.max_queue) {
    ++dstats.dropped_queue_full;
    if (is_control_class(frame.traffic_class)) ++dstats.dropped_queue_control;
    return;
  }
  auto& hw = is_control_class(frame.traffic_class)
                 ? dstats.control_backlog_hw_ns
                 : dstats.data_backlog_hw_ns;
  hw = std::max(hw, static_cast<std::uint64_t>(backlog.ns()));

  sim::Duration ser = ser_time(frame);
  serialize_and_send(dir, std::move(frame), ser);
}

void Link::transmit_priority(int dir, Frame frame) {
  DirStats& dstats = dir_stats(static_cast<Dir>(dir));
  bool control = is_control_class(frame.traffic_class);
  sim::Duration ser = ser_time(frame);

  sim::Time now = send_ctx(dir).now();
  sim::Duration residual =
      busy_until_[dir] > now ? busy_until_[dir] - now : sim::Duration{};

  // Fast path: idle transmitter and empty bands behave exactly like the
  // shared FIFO — one delivery event per frame, no queue churn. This is what
  // keeps steady-state event throughput unchanged by the priority feature.
  if (residual <= sim::Duration{} && bands_[dir][kControlBand].empty() &&
      bands_[dir][kDataBand].empty()) {
    serialize_and_send(dir, std::move(frame), ser);
    return;
  }

  // Band admission. A control frame only waits behind the frame already on
  // the wire plus other control frames (strict priority), so its depth limit
  // considers the control band alone — the guaranteed band. Data sees the
  // whole backlog, matching the shared FIFO's tail-drop bound.
  sim::Duration wait = control ? band_backlog_[dir][kControlBand]
                               : residual + band_backlog_[dir][kControlBand] +
                                     band_backlog_[dir][kDataBand];
  if (wait > (control ? params_.control_queue : params_.max_queue)) {
    ++dstats.dropped_queue_full;
    if (control) ++dstats.dropped_queue_control;
    return;
  }
  auto& hw = control ? dstats.control_backlog_hw_ns : dstats.data_backlog_hw_ns;
  hw = std::max(hw, static_cast<std::uint64_t>(wait.ns()));

  int band = control ? kControlBand : kDataBand;
  band_bytes_[dir][band] += frame.padded_wire_size();
  bands_[dir][band].push_back(Pending{std::move(frame), ser});
  band_backlog_[dir][band] = band_backlog_[dir][band] + ser;
  if (!drain_armed_[dir]) {
    drain_armed_[dir] = true;
    send_ctx(dir).sched.schedule_at(std::max(now, busy_until_[dir]),
                                    [this, dir] { drain(dir); });
  }
}

void Link::transmit_buffered(int dir, Frame frame, SwitchBuffer& sb) {
  DirStats& dstats = dir_stats(static_cast<Dir>(dir));
  bool control = is_control_class(frame.traffic_class);
  sim::Duration ser = ser_time(frame);

  sim::Time now = send_ctx(dir).now();
  sim::Duration residual =
      busy_until_[dir] > now ? busy_until_[dir] - now : sim::Duration{};
  bool idle = residual <= sim::Duration{} &&
              bands_[dir][kControlBand].empty() &&
              bands_[dir][kDataBand].empty();

  if (control) {
    // The control band keeps its serialization-time carve-out from priority
    // mode and is never charged to the data pool — this is the invariant
    // that keeps hellos/ACKs deliverable at 100% data occupancy. A PAUSE
    // only stops the data band, so control also ignores paused_.
    if (idle) {
      serialize_and_send(dir, std::move(frame), ser);
      return;
    }
    sim::Duration wait = band_backlog_[dir][kControlBand];
    if (wait > params_.control_queue) {
      ++dstats.dropped_queue_full;
      ++dstats.dropped_queue_control;
      return;
    }
    dstats.control_backlog_hw_ns = std::max(
        dstats.control_backlog_hw_ns, static_cast<std::uint64_t>(wait.ns()));
    if (sb.params().ecn_ctrl_threshold > 0 &&
        band_bytes_[dir][kControlBand] + frame.padded_wire_size() >
            sb.params().ecn_ctrl_threshold &&
        mark_ce(frame)) {
      ++dstats.ecn_marked_ctrl;
      sb.note_ecn_mark();
    }
    sb.note_ctrl_admitted();
    band_bytes_[dir][kControlBand] += frame.padded_wire_size();
    bands_[dir][kControlBand].push_back(Pending{std::move(frame), ser});
    band_backlog_[dir][kControlBand] =
        band_backlog_[dir][kControlBand] + ser;
    if (!drain_armed_[dir]) {
      drain_armed_[dir] = true;
      send_ctx(dir).sched.schedule_at(std::max(now, busy_until_[dir]),
                                      [this, dir] { drain(dir); });
    }
    return;
  }

  // Data. Fast path only while unpaused: one delivery event, no buffer held
  // (cut-through approximation — occupancy counts queued frames).
  if (idle && !paused_[dir]) {
    serialize_and_send(dir, std::move(frame), ser);
    return;
  }
  sim::Duration wait = residual + band_backlog_[dir][kControlBand] +
                       band_backlog_[dir][kDataBand];
  if (wait > params_.max_queue) {
    ++dstats.dropped_queue_full;
    return;
  }
  auto bytes = static_cast<std::uint32_t>(frame.padded_wire_size());
  Port& from = sender(dir);
  if (!sb.admit_egress(from.number(), bytes)) {
    ++dstats.dropped_buffer;
    return;
  }
  std::uint32_t ingress = from.owner().current_rx_port();
  if (ingress != 0) sb.charge_ingress(ingress, bytes);
  if (sb.params().ecn_data_threshold > 0 &&
      band_bytes_[dir][kDataBand] + bytes >
          sb.params().ecn_data_threshold &&
      mark_ce(frame)) {
    ++dstats.ecn_marked_data;
    sb.note_ecn_mark();
  }
  dstats.data_backlog_hw_ns = std::max(
      dstats.data_backlog_hw_ns, static_cast<std::uint64_t>(wait.ns()));
  band_bytes_[dir][kDataBand] += bytes;
  bands_[dir][kDataBand].push_back(
      Pending{std::move(frame), ser, bytes, ingress});
  band_backlog_[dir][kDataBand] = band_backlog_[dir][kDataBand] + ser;
  // While paused with nothing else queued, leave the drain unarmed; the
  // RESUME (or a later control frame) re-arms it.
  if (!drain_armed_[dir] && !paused_[dir]) {
    drain_armed_[dir] = true;
    send_ctx(dir).sched.schedule_at(std::max(now, busy_until_[dir]),
                                    [this, dir] { drain(dir); });
  }
}

void Link::drain(int dir) {
  int band =
      !bands_[dir][kControlBand].empty() ? kControlBand : kDataBand;
  auto& q = bands_[dir][band];
  // Defensive empty check; a PAUSEd data band with no control waiting also
  // parks the drain (the RESUME re-arms it).
  if (q.empty() || (band == kDataBand && paused_[dir])) {
    drain_armed_[dir] = false;
    return;
  }
  Pending p = std::move(q.front());
  q.pop_front();
  band_backlog_[dir][band] = band_backlog_[dir][band] - p.ser;
  std::uint64_t wire = p.frame.padded_wire_size();
  band_bytes_[dir][band] -= std::min(band_bytes_[dir][band], wire);
  serialize_and_send(dir, std::move(p.frame), p.ser);
  if (p.charged > 0) {
    // The frame left the buffer: release its pool/ingress charges. This can
    // emit a RESUME out the ingress port (a different link's control band).
    if (SwitchBuffer* sb = sender(dir).owner().switch_buffer()) {
      sb->release_egress(sender(dir).number(), p.charged);
      if (p.ingress != 0) sb->release_ingress(p.ingress, p.charged);
    }
  }
  bool more = !bands_[dir][kControlBand].empty() ||
              (!paused_[dir] && !bands_[dir][kDataBand].empty());
  if (more) {
    send_ctx(dir).sched.schedule_at(busy_until_[dir],
                                    [this, dir] { drain(dir); });
  } else {
    drain_armed_[dir] = false;
  }
}

void Link::serialize_and_send(int dir, Frame frame, sim::Duration ser) {
  Dir direction = static_cast<Dir>(dir);
  DirStats& dstats = dir_stats(direction);
  Port& to = dir == static_cast<int>(Dir::kAToB) ? *b_ : *a_;

  // Serialization occupies the transmitter; back-to-back frames queue.
  sim::Time start = std::max(send_ctx(dir).now(), busy_until_[dir]);
  busy_until_[dir] = start + ser;
  sim::Time arrival = busy_until_[dir] + params_.delay;

  // Gray failures kill the frame after the sender's transmitter did its
  // normal work — the sending side observes nothing locally.
  const Impairments& im = impair_[dir];
  if (im.blackhole) {
    ++dstats.dropped_blackhole;
    return;
  }

  sim::Rng& rng = dir_rng(dir);
  if (params_.reorder_jitter > sim::Duration{}) {
    arrival = arrival + sim::Duration::nanos(static_cast<std::int64_t>(
                  rng.below(static_cast<std::uint64_t>(
                      params_.reorder_jitter.ns()))));
  }

  bool duplicate = params_.duplicate_probability > 0 &&
                   rng.chance(params_.duplicate_probability);
  bool lost = params_.loss_probability > 0 &&
              rng.chance(params_.loss_probability);
  if (!lost && (im.loss > 0 || im.ramp_over > sim::Duration{})) {
    lost = rng.chance(effective_loss(direction));
  }
  if (lost) {
    ++dstats.dropped_impairment;
    if (!duplicate) return;
    duplicate = false;  // the "copy" survives as the only delivery
  }

  if (duplicate) {
    // Schedule the duplicate first so the primary delivery below can still
    // move the frame; the copy shares the payload slab (refcount bump), and
    // that second reference is exactly what blocks in-place mutation of the
    // delivered bytes until the duplicate lands.
    ++dstats.duplicated;
    Frame copy = frame;
    schedule_delivery(dir, arrival + sim::Duration::micros(1),
                      [this, dir, &to, &dstats, copy = std::move(copy)]() mutable {
                        deliver(dir, to, std::move(copy), dstats);
                      });
  }
  // The last/only delivery moves the frame — no payload copy on transit.
  schedule_delivery(dir, arrival,
                    [this, dir, &to, &dstats, frame = std::move(frame)]() mutable {
                      deliver(dir, to, std::move(frame), dstats);
                    });
}

void Link::deliver(int dir, Port& to, Frame frame, DirStats& dstats) {
  if (!to.admin_up()) {
    ++dstats.dropped_dst_down;
    return;
  }
  ++dstats.delivered;
  if (tap_) tap_(to.owner().ctx().now(), frame);
  to.rx_stats().record(frame);
  if (frame.ethertype == EtherType::kFlowControl) {
    // Link-local PFC: consumed here, never handed to the node. The paused
    // direction is the reverse of the PFC's travel — its transmitter is the
    // receiving node, so this executes on the shard that owns that state.
    apply_flow_control(dir, frame);
    return;
  }
  to.owner().receive_frame(to, std::move(frame));
}

void Link::apply_flow_control(int delivery_dir, const Frame& frame) {
  int pd = 1 - delivery_dir;  // the direction being paused/resumed
  bool pause = !frame.payload.empty() && frame.payload[0] != 0;
  DirStats& dstats = dir_stats(static_cast<Dir>(pd));
  if (pause) {
    if (!paused_[pd]) {
      paused_[pd] = true;
      pause_start_[pd] = send_ctx(pd).now();
      ++dstats.pause_rx;
    }
    return;
  }
  if (!paused_[pd]) return;
  paused_[pd] = false;
  ++dstats.pause_rx;
  dstats.pause_ns += static_cast<std::uint64_t>(
      (send_ctx(pd).now() - pause_start_[pd]).ns());
  if (!bands_[pd][kDataBand].empty() && !drain_armed_[pd]) {
    drain_armed_[pd] = true;
    sim::Time at = std::max(send_ctx(pd).now(), busy_until_[pd]);
    send_ctx(pd).sched.schedule_at(at, [this, pd] { drain(pd); });
  }
}

std::uint64_t Link::pause_ns_total(Dir dir) const {
  int d = static_cast<int>(dir);
  std::uint64_t ns = stats_->dir(dir).pause_ns;
  if (paused_[d]) {
    ns += static_cast<std::uint64_t>(
        (send_ctx(d).now() - pause_start_[d]).ns());
  }
  return ns;
}

}  // namespace mrmtp::net
