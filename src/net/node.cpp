#include "net/node.hpp"

#include <stdexcept>
#include <utility>

#include "net/link.hpp"
#include "net/switch_buffer.hpp"

namespace mrmtp::net {

Node::Node(SimContext& ctx, std::string name, std::uint32_t tier)
    : ctx_(ctx), name_(std::move(name)), tier_(tier) {}

Node::~Node() = default;

Port::Port(Node& owner, std::uint32_t number)
    : owner_(&owner),
      number_(number),
      tx_(&owner.ctx().stats.alloc_traffic()),
      rx_(&owner.ctx().stats.alloc_traffic()) {}

MacAddr Port::mac() const { return MacAddr::for_port(owner_->id(), number_); }

Port* Port::peer() const {
  if (link_ == nullptr) return nullptr;
  return &link_->other(*this);
}

std::string Port::str() const {
  return owner_->name() + ":" + std::to_string(number_);
}

Port& Node::add_port() {
  auto number = static_cast<std::uint32_t>(ports_.size() + 1);
  ports_.push_back(std::make_unique<Port>(*this, number));
  return *ports_.back();
}

Port& Node::port(std::uint32_t number) {
  if (number == 0 || number > ports_.size()) {
    throw std::out_of_range("Node " + name_ + ": no port " +
                            std::to_string(number));
  }
  return *ports_[number - 1];
}

const Port& Node::port(std::uint32_t number) const {
  return const_cast<Node*>(this)->port(number);
}

void Node::transmit(Port& out, Frame frame) {
  if (&out.owner() != this) {
    throw std::logic_error("Node::transmit via foreign port");
  }
  if (!out.connected() || !out.admin_up()) return;
  out.link()->transmit(out, std::move(frame));
}

SwitchBuffer& Node::enable_switch_buffer(const SwitchBufferParams& params) {
  switch_buffer_ = std::make_unique<SwitchBuffer>(*this, params);
  return *switch_buffer_;
}

void Node::receive_frame(Port& in, Frame frame) {
  std::uint32_t saved = rx_port_no_;
  rx_port_no_ = in.number();
  handle_frame(in, std::move(frame));
  rx_port_no_ = saved;
}

void Node::set_interface_down(std::uint32_t port_number) {
  Port& p = port(port_number);
  if (!p.admin_up_) return;
  p.admin_up_ = false;
  log(sim::LogLevel::kInfo, "interface " + p.str() + " DOWN");
  on_port_down(p);
}

void Node::set_interface_up(std::uint32_t port_number) {
  Port& p = port(port_number);
  if (p.admin_up_) return;
  p.admin_up_ = true;
  log(sim::LogLevel::kInfo, "interface " + p.str() + " UP");
  on_port_up(p);
}

void Node::log(sim::LogLevel level, std::string msg) const {
  ctx_.log.log(ctx_.sched.now(), level, name_, std::move(msg));
}

}  // namespace mrmtp::net
