// Finite shared egress buffering for one switch, with ECN marking and
// PFC-style per-class backpressure.
//
// Every Link so far bounded its queue by serialization-time depth alone —
// effectively elastic memory. A SwitchBuffer makes bytes the scarce resource:
// data-band frames admitted to any of the node's egress bands are charged
// (at padded wire size) against one shared per-switch pool, optionally
// capped per port by a dynamic threshold (DT: cap = reserve + alpha * free
// shared bytes, the classic Choudhury–Hahne scheme) or left fully shared
// (alpha <= 0, the commodity tail-drop configuration that congestion can
// drive to 100% occupancy). The control band keeps its serialization-time
// carve-out from the priority-queue feature and is never charged to the
// pool, which is what keeps hellos/ACKs deliverable at full data occupancy.
//
// PFC: each admitted data frame is also charged to the *ingress* port it
// arrived on. When an ingress account crosses `pfc_xoff_bytes` the switch
// sends a PAUSE frame out that port (EtherType::kFlowControl, control band);
// the peer Link stops serving its data band toward us until a RESUME follows
// at `pfc_xon_bytes`. Pause state lives in the Link (the entity that owns
// the paused transmitter), so backpressure propagates hop by hop as each
// upstream switch's own buffers fill in turn.
//
// ECN: frames admitted behind more than `ecn_*_threshold` bytes of same-band
// backlog get their IPv4 ECN field set to CE in place (checksum patched),
// wire-accurately — receivers and transports see exactly what a real
// ECN-marking switch would have produced.
#pragma once

#include <cstdint>
#include <vector>

#include "net/frame.hpp"
#include "net/stats.hpp"

namespace mrmtp::net {

class Node;

/// Configuration of one switch's shared buffer. Defaults model a shallow
/// merchant-silicon ToR: 1 MiB shared, DT alpha 1, DCTCP-ish marking step.
struct SwitchBufferParams {
  /// Shared data-band pool in bytes.
  std::uint64_t pool_bytes = 1u << 20;
  /// Per-egress-port guaranteed bytes (admitted even when the DT cap would
  /// otherwise refuse; only meaningful with dt_alpha > 0).
  std::uint64_t port_reserve_bytes = 16u << 10;
  /// Dynamic-threshold alpha: per-port cap = reserve + alpha * free shared
  /// bytes. <= 0 disables the per-port cap entirely — pure shared tail-drop,
  /// under which one incast can fill the pool to 100%.
  double dt_alpha = 1.0;
  /// ECN CE-mark threshold for the data band, in bytes of same-band backlog
  /// at admission. 0 = no data-band marking.
  std::uint64_t ecn_data_threshold = 64u << 10;
  /// Same for the control band (lets BGP UPDATE storms be throttled by
  /// DCTCP). 0 (default) = control frames are never marked.
  std::uint64_t ecn_ctrl_threshold = 0;
  /// PFC thresholds on the per-ingress-port account: PAUSE above xoff,
  /// RESUME at/below xon. xoff = 0 disables PFC generation.
  std::uint64_t pfc_xoff_bytes = 96u << 10;
  std::uint64_t pfc_xon_bytes = 32u << 10;
};

class SwitchBuffer {
 public:
  using Params = SwitchBufferParams;
  using Stats = SwitchBufferStats;

  SwitchBuffer(Node& owner, const Params& params);

  SwitchBuffer(const SwitchBuffer&) = delete;
  SwitchBuffer& operator=(const SwitchBuffer&) = delete;

  /// Charges `bytes` to the pool and the egress port's DT account. False =
  /// refused (pool or cap exhausted); the caller drops the frame.
  [[nodiscard]] bool admit_egress(std::uint32_t port_no, std::uint64_t bytes);
  void release_egress(std::uint32_t port_no, std::uint64_t bytes);

  /// Charges `bytes` to the ingress port the frame arrived on; crossing the
  /// PFC xoff threshold sends a PAUSE frame out that port. No-op with PFC
  /// disabled.
  void charge_ingress(std::uint32_t port_no, std::uint64_t bytes);
  void release_ingress(std::uint32_t port_no, std::uint64_t bytes);

  void note_ctrl_admitted() { ++stats_->ctrl_admitted; }
  void note_ecn_mark() { ++stats_->ecn_marked; }

  /// Chaos hook (kBufferSqueeze): shrinks the effective pool to
  /// `frac * pool_bytes` (floor 1). Already-buffered bytes stay; only new
  /// admissions see the squeezed pool. restore() undoes it.
  void squeeze(double frac);
  void restore();

  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] const Stats& stats() const { return *stats_; }
  [[nodiscard]] std::uint64_t pool_used() const { return pool_used_; }
  [[nodiscard]] std::uint64_t effective_pool() const { return effective_pool_; }
  [[nodiscard]] bool exhausted() const { return pool_used_ >= effective_pool_; }
  /// True while this switch has PAUSEd the peer on `port_no`.
  [[nodiscard]] bool ingress_paused(std::uint32_t port_no) const;

 private:
  struct PortState {
    std::uint64_t egress_bytes = 0;   // charged to this egress port
    std::uint64_t ingress_bytes = 0;  // buffered bytes that arrived here
    bool paused_peer = false;         // we sent PAUSE, no RESUME yet
  };

  PortState& state(std::uint32_t port_no);
  /// Sends a PFC PAUSE (true) / RESUME (false) frame out `port_no`.
  void signal(std::uint32_t port_no, bool pause);

  Node* owner_;
  Params params_;
  /// Pool cap admissions are checked against; == params_.pool_bytes unless
  /// squeezed by chaos.
  std::uint64_t effective_pool_;
  std::uint64_t pool_used_ = 0;
  /// Indexed by 1-based port number; grown on demand (live expansion can
  /// wire ports after the buffer is enabled).
  std::vector<PortState> ports_;
  /// Slab-allocated in the owning context's StatsArena.
  Stats* stats_;
};

/// Sets the IPv4 ECN field of the frame's (possibly encapsulated) IP header
/// to CE, in place, patching the header checksum — the raw-byte equivalent
/// of ip::Ipv4Header round-tripping, kept here because net cannot depend on
/// the ip codec layer. Returns true iff a new mark was applied (false when
/// there is no reachable IPv4 header or the packet is already CE).
bool mark_ce(Frame& frame);

}  // namespace mrmtp::net
