#include "net/pcap.hpp"

#include <cstdio>

namespace mrmtp::net {

namespace {

void le16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void le32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

}  // namespace

std::vector<std::uint8_t> PcapWriter::to_pcap() const {
  std::vector<std::uint8_t> out;
  out.reserve(24 + records_.size() * 80);

  // Global header: little-endian magic, version 2.4, UTC, snaplen 65535,
  // LINKTYPE_ETHERNET (1).
  le32(out, 0xa1b2c3d4);
  le16(out, 2);
  le16(out, 4);
  le32(out, 0);  // thiszone
  le32(out, 0);  // sigfigs
  le32(out, 65535);
  le32(out, 1);

  for (const Record& rec : records_) {
    std::int64_t ns = rec.at.ns();
    const Frame& f = rec.frame;
    le32(out, static_cast<std::uint32_t>(ns / 1'000'000'000));
    le32(out, static_cast<std::uint32_t>((ns % 1'000'000'000) / 1000));
    le32(out, static_cast<std::uint32_t>(f.wire_size()));
    le32(out, static_cast<std::uint32_t>(f.wire_size()));
    // Ethernet header + payload straight from the shared slab — identical
    // bytes to Frame::serialize() without the intermediate vector.
    out.insert(out.end(), f.dst.bytes.begin(), f.dst.bytes.end());
    out.insert(out.end(), f.src.bytes.begin(), f.src.bytes.end());
    out.push_back(static_cast<std::uint8_t>(
        static_cast<std::uint16_t>(f.ethertype) >> 8));
    out.push_back(static_cast<std::uint8_t>(
        static_cast<std::uint16_t>(f.ethertype) & 0xff));
    if (!f.payload.empty()) {
      out.insert(out.end(), f.payload.begin(), f.payload.end());
    }
  }
  return out;
}

bool PcapWriter::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  auto bytes = to_pcap();
  std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  return written == bytes.size();
}

void attach_tap(Link& link, PcapWriter& writer) {
  link.set_tap([&writer](sim::Time at, const Frame& frame) {
    writer.capture(at, frame);
  });
}

}  // namespace mrmtp::net
