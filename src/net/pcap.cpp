#include "net/pcap.hpp"

#include <cstdio>

namespace mrmtp::net {

namespace {

void le16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void le32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

}  // namespace

std::vector<std::uint8_t> PcapWriter::to_pcap() const {
  std::vector<std::uint8_t> out;
  out.reserve(24 + records_.size() * 80);

  // Global header: little-endian magic, version 2.4, UTC, snaplen 65535,
  // LINKTYPE_ETHERNET (1).
  le32(out, 0xa1b2c3d4);
  le16(out, 2);
  le16(out, 4);
  le32(out, 0);  // thiszone
  le32(out, 0);  // sigfigs
  le32(out, 65535);
  le32(out, 1);

  for (const Record& rec : records_) {
    std::int64_t ns = rec.at.ns();
    le32(out, static_cast<std::uint32_t>(ns / 1'000'000'000));
    le32(out, static_cast<std::uint32_t>((ns % 1'000'000'000) / 1000));
    le32(out, static_cast<std::uint32_t>(rec.bytes.size()));
    le32(out, static_cast<std::uint32_t>(rec.bytes.size()));
    out.insert(out.end(), rec.bytes.begin(), rec.bytes.end());
  }
  return out;
}

bool PcapWriter::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  auto bytes = to_pcap();
  std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  return written == bytes.size();
}

void attach_tap(Link& link, PcapWriter& writer) {
  link.set_tap([&writer](sim::Time at, const Frame& frame) {
    writer.capture(at, frame);
  });
}

}  // namespace mrmtp::net
