#include "net/buffer.hpp"

#include <algorithm>
#include <new>
#include <stdexcept>

#if defined(__SANITIZE_ADDRESS__)
#define MRMTP_HAS_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MRMTP_HAS_ASAN 1
#endif
#endif

#ifdef MRMTP_HAS_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace mrmtp::net {
namespace {

void poison_region(std::uint8_t* p, std::size_t n) {
  std::memset(p, 0xDD, n);
#ifdef MRMTP_HAS_ASAN
  __asan_poison_memory_region(p, n);
#else
  (void)p;
  (void)n;
#endif
}

void unpoison_region(std::uint8_t* p, std::size_t n) {
#ifdef MRMTP_HAS_ASAN
  __asan_unpoison_memory_region(p, n);
#else
  (void)p;
  (void)n;
#endif
}

}  // namespace

BufferPool& BufferPool::instance() {
  static thread_local BufferPool pool;
  return pool;
}

void BufferPool::reset_stats() {
  const std::uint64_t live = stats_.live_slabs;
  stats_ = BufferPoolStats{};
  stats_.live_slabs = live;
  stats_.live_high_water = live;
}

void BufferPool::trim() {
  for (auto& list : free_) {
    for (Slab* slab : list) {
      if (poison_) unpoison_region(slab->data(), slab->capacity);
      ::operator delete(slab);
    }
    list.clear();
  }
}

BufferPool::~BufferPool() { trim(); }

BufferPool::Slab* BufferPool::acquire(std::size_t capacity) {
  std::int8_t cls = -1;
  for (std::size_t i = 0; i < kClassCount; ++i) {
    if (capacity <= kClassSizes[i]) {
      cls = static_cast<std::int8_t>(i);
      capacity = kClassSizes[i];
      break;
    }
  }

  Slab* slab = nullptr;
  if (cls >= 0 && !free_[static_cast<std::size_t>(cls)].empty()) {
    auto& list = free_[static_cast<std::size_t>(cls)];
    slab = list.back();
    list.pop_back();
    if (poison_) unpoison_region(slab->data(), slab->capacity);
    ++stats_.slab_reuses;
  } else {
    slab = static_cast<Slab*>(::operator new(sizeof(Slab) + capacity));
    slab->capacity = static_cast<std::uint32_t>(capacity);
    slab->cls = cls;
    ++stats_.slab_allocs;
    if (cls < 0) ++stats_.oversize_allocs;
  }
  slab->refs = 1;
  ++stats_.live_slabs;
  stats_.live_high_water = std::max(stats_.live_high_water, stats_.live_slabs);
  return slab;
}

void BufferPool::release(Slab* slab) {
  --stats_.live_slabs;
  if (slab->cls >= 0 &&
      free_[static_cast<std::size_t>(slab->cls)].size() < kMaxFreePerClass) {
    if (poison_) poison_region(slab->data(), slab->capacity);
    free_[static_cast<std::size_t>(slab->cls)].push_back(slab);
    ++stats_.slab_returns;
  } else {
    ::operator delete(slab);
  }
}

// --- Buffer ---------------------------------------------------------------

void Buffer::reset() {
  if (slab_ != nullptr) {
    if (--slab_->refs == 0) BufferPool::instance().release(slab_);
    slab_ = nullptr;
  }
  off_ = len_ = 0;
}

Buffer Buffer::allocate(std::size_t size, std::size_t headroom) {
  auto& pool = BufferPool::instance();
  BufferPool::Slab* slab = pool.acquire(headroom + size);
  std::memset(slab->data() + headroom, 0, size);
  return Buffer(slab, static_cast<std::uint32_t>(headroom),
                static_cast<std::uint32_t>(size));
}

Buffer Buffer::copy_of(std::span<const std::uint8_t> bytes,
                       std::size_t headroom) {
  auto& pool = BufferPool::instance();
  BufferPool::Slab* slab = pool.acquire(headroom + bytes.size());
  if (!bytes.empty()) {
    std::memcpy(slab->data() + headroom, bytes.data(), bytes.size());
  }
  pool.stats_.import_bytes += bytes.size();
  pool.stats_.bytes_copied += bytes.size();
  return Buffer(slab, static_cast<std::uint32_t>(headroom),
                static_cast<std::uint32_t>(bytes.size()));
}

std::uint8_t* Buffer::mutable_data() {
  if (slab_ == nullptr) return nullptr;
  if (!unique()) {
    Buffer clone = copy_of(span(), off_);
    swap(clone);
  }
  return slab_->data() + off_;
}

void Buffer::assign(std::size_t count, std::uint8_t value) {
  if (slab_ == nullptr || !unique() ||
      off_ + count > slab_->capacity) {
    *this = allocate(count);
  } else {
    len_ = static_cast<std::uint32_t>(count);
  }
  if (count > 0) std::memset(slab_->data() + off_, value, count);
}

Buffer Buffer::slice(std::size_t offset) const {
  return slice(offset, len_ - std::min<std::size_t>(offset, len_));
}

Buffer Buffer::slice(std::size_t offset, std::size_t length) const {
  if (offset + length > len_) {
    throw std::out_of_range("Buffer::slice out of range");
  }
  if (slab_ == nullptr) return Buffer{};
  BufferPool::retain(slab_);
  BufferPool::instance().stats_.bytes_shared += length;
  return Buffer(slab_, off_ + static_cast<std::uint32_t>(offset),
                static_cast<std::uint32_t>(length));
}

void Buffer::prepend(std::span<const std::uint8_t> header) {
  auto& pool = BufferPool::instance();
  if (slab_ != nullptr && unique() && off_ >= header.size()) {
    off_ -= static_cast<std::uint32_t>(header.size());
    len_ += static_cast<std::uint32_t>(header.size());
    if (!header.empty()) {
      std::memcpy(slab_->data() + off_, header.data(), header.size());
    }
    ++pool.stats_.prepend_inplace;
    pool.stats_.bytes_shared += len_ - header.size();
    return;
  }
  // Shared slab or exhausted headroom: copy header + payload into a fresh
  // slab with full default headroom restored.
  BufferPool::Slab* slab = pool.acquire(kDefaultHeadroom + header.size() + len_);
  if (!header.empty()) {
    std::memcpy(slab->data() + kDefaultHeadroom, header.data(), header.size());
  }
  if (len_ > 0) {
    std::memcpy(slab->data() + kDefaultHeadroom + header.size(), data(), len_);
  }
  ++pool.stats_.prepend_copies;
  pool.stats_.bytes_copied += len_;
  Buffer replaced(slab, static_cast<std::uint32_t>(kDefaultHeadroom),
                  static_cast<std::uint32_t>(header.size() + len_));
  swap(replaced);
}

// --- BufferWriter ---------------------------------------------------------

BufferWriter::BufferWriter(std::size_t reserve, std::size_t headroom)
    : headroom_(static_cast<std::uint32_t>(headroom)) {
  slab_ = BufferPool::instance().acquire(headroom + std::max<std::size_t>(
                                                        reserve, 1));
}

BufferWriter::~BufferWriter() {
  if (slab_ != nullptr && --slab_->refs == 0) {
    BufferPool::instance().release(slab_);
  }
}

void BufferWriter::ensure(std::size_t more) {
  const std::size_t need = headroom_ + len_ + more;
  if (need <= slab_->capacity) return;
  auto& pool = BufferPool::instance();
  BufferPool::Slab* bigger = pool.acquire(std::max<std::size_t>(
      need, static_cast<std::size_t>(slab_->capacity) * 2));
  if (len_ > 0) std::memcpy(bigger->data() + headroom_, cur(), len_);
  ++pool.stats_.writer_regrows;
  pool.stats_.bytes_copied += len_;
  if (--slab_->refs == 0) pool.release(slab_);
  slab_ = bigger;
}

void BufferWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  if (offset + 2 > len_) {
    throw std::out_of_range("BufferWriter::patch_u16 out of range");
  }
  cur()[offset] = static_cast<std::uint8_t>(v >> 8);
  cur()[offset + 1] = static_cast<std::uint8_t>(v & 0xff);
}

Buffer BufferWriter::take() {
  Buffer out(slab_, headroom_, len_);
  slab_ = nullptr;
  len_ = 0;
  return out;
}

}  // namespace mrmtp::net
