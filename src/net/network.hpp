// Network: owns all nodes and links of one simulated DCN.
#pragma once

#include <memory>
#include <stdexcept>
#include <string_view>
#include <utility>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"

namespace mrmtp::net {

class Network {
 public:
  explicit Network(SimContext& ctx) : ctx_(ctx) {}

  /// Constructs a node of type T (forwarding `args` after the SimContext)
  /// and registers it. T must derive from Node.
  template <typename T, typename... Args>
  T& add_node(Args&&... args) {
    return add_node_on<T>(ctx_, std::forward<Args>(args)...);
  }

  /// Same, but the node lives on an explicit context — the sharded harness
  /// hands each device its owning shard's SimContext here. Node ids follow
  /// registration order regardless of placement, so a blueprint deploys to
  /// identical ids no matter how it is sharded.
  template <typename T, typename... Args>
  T& add_node_on(SimContext& ctx, Args&&... args) {
    auto node = std::make_unique<T>(ctx, std::forward<Args>(args)...);
    node->id_ = static_cast<std::uint32_t>(nodes_.size() + 1);
    T& ref = *node;
    nodes_.push_back(std::move(node));
    return ref;
  }

  /// Wires a new port on `a` to a new port on `b`; returns the link.
  Link& connect(Node& a, Node& b, Link::Params params = {}) {
    Port& pa = a.add_port();
    Port& pb = b.add_port();
    links_.push_back(std::make_unique<Link>(ctx_, pa, pb, params));
    return *links_.back();
  }

  /// Calls start() on every node (after the whole topology is wired).
  void start_all() {
    for (auto& n : nodes_) n->start();
  }

  [[nodiscard]] Node& find(std::string_view name) const {
    for (auto& n : nodes_) {
      if (n->name() == name) return *n;
    }
    throw std::out_of_range("Network: no node named " + std::string(name));
  }

  [[nodiscard]] Node* find_or_null(std::string_view name) const {
    for (auto& n : nodes_) {
      if (n->name() == name) return n.get();
    }
    return nullptr;
  }

  [[nodiscard]] const std::vector<std::unique_ptr<Node>>& nodes() const {
    return nodes_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<Link>>& links() const {
    return links_;
  }
  [[nodiscard]] SimContext& ctx() { return ctx_; }

 private:
  SimContext& ctx_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
};

}  // namespace mrmtp::net
