// Pooled, refcounted frame payload buffers.
//
// Every frame payload in the simulator is a `Buffer`: a view (offset, length)
// into a refcounted slab drawn from a per-thread pool of fixed size classes.
// Copying a Buffer shares the slab (refcount bump, no bytes move), which is
// what lets a data frame travel host -> ToR -> spine -> ToR -> host in one
// allocation: links hand the same slab to the next node, pcap taps retain it,
// and encapsulation *prepends* headers into reserved headroom instead of
// re-serializing the packet behind them.
//
// Mutation discipline: in-place writes (prepend, patch) are only legal while
// the slab is uniquely owned. Shared slabs — a tap holding a capture, a
// duplicated delivery in flight — force a counted copy-on-write instead, so
// captured bytes can never change after the fact. The pool tracks both paths
// (`prepend_inplace` vs `prepend_copies`, `bytes_shared` vs `bytes_copied`),
// which is how tests assert the steady-state forwarding loop is zero-copy.
//
// Released slabs return to a bounded freelist; in poison mode (on by default
// under ASan) their bytes are clobbered and the region is ASan-poisoned so a
// stale view faults instead of silently reading recycled payload.
#pragma once

#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <span>
#include <vector>

namespace mrmtp::net {

/// Pool-wide counters; deltas across a run window are the zero-copy proof.
struct BufferPoolStats {
  std::uint64_t slab_allocs = 0;     // new slabs from the heap
  std::uint64_t slab_reuses = 0;     // slabs served from a freelist
  std::uint64_t slab_returns = 0;    // slabs returned to a freelist
  std::uint64_t oversize_allocs = 0; // larger than every size class
  std::uint64_t prepend_inplace = 0; // headers written into headroom
  std::uint64_t prepend_copies = 0;  // headroom/uniqueness miss -> copy
  std::uint64_t writer_regrows = 0;  // BufferWriter outgrew its slab
  std::uint64_t import_bytes = 0;    // bytes copied in from foreign storage
  std::uint64_t bytes_copied = 0;    // payload bytes physically copied
  std::uint64_t bytes_shared = 0;    // payload bytes reused via refcount
  std::uint64_t live_slabs = 0;      // currently checked-out slabs
  std::uint64_t live_high_water = 0; // max simultaneous checked-out slabs
};

class Buffer;
class BufferWriter;

/// Per-thread slab pool (the simulator is single-threaded per SimContext;
/// thread-local state keeps the pool trivially race-free under TSan).
class BufferPool {
 public:
  static constexpr std::size_t kClassSizes[] = {128, 512, 2048, 8192};
  static constexpr std::size_t kClassCount = 4;
  static constexpr std::size_t kMaxFreePerClass = 256;

  static BufferPool& instance();

  [[nodiscard]] const BufferPoolStats& stats() const { return stats_; }
  void reset_stats();

  /// Poison released slabs (0xDD fill + ASan region poisoning). Defaults to
  /// on under ASan builds, off otherwise; tests flip it explicitly.
  void set_poison(bool on) { poison_ = on; }
  [[nodiscard]] bool poison() const { return poison_; }

  /// Drops every cached slab back to the heap.
  void trim();

  ~BufferPool();

 private:
  friend class Buffer;
  friend class BufferWriter;

  struct Slab {
    std::uint32_t refs;
    std::uint32_t capacity;
    std::int8_t cls;  // size-class index, -1 = oversize (never pooled)
    // Payload bytes follow the header.
    [[nodiscard]] std::uint8_t* data() {
      return reinterpret_cast<std::uint8_t*>(this + 1);
    }
  };

  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  [[nodiscard]] Slab* acquire(std::size_t capacity);
  void release(Slab* slab);
  static void retain(Slab* slab) { ++slab->refs; }

  BufferPoolStats stats_;
  std::vector<Slab*> free_[kClassCount];
  bool poison_ = kDefaultPoison;

  static constexpr bool kDefaultPoison =
#if defined(__SANITIZE_ADDRESS__)
      true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
      true;
#else
      false;
#endif
#else
      false;
#endif
};

/// A refcounted view into a pooled slab. Value semantics: copy shares the
/// slab, move transfers it. API mirrors the std::vector<uint8_t> it replaced
/// so codec and test code reads unchanged.
class Buffer {
 public:
  /// Headroom reserved in front of freshly written payloads — enough for the
  /// deepest header stack prepended on the hot path (MTP 6 + IPv4 20 + UDP 8,
  /// VXLAN-padded; see DESIGN.md §4).
  static constexpr std::size_t kDefaultHeadroom = 64;

  Buffer() = default;

  /// Imports foreign bytes (one counted copy) with default headroom. Implicit
  /// so existing `payload = some_vector` call sites keep compiling.
  Buffer(const std::vector<std::uint8_t>& bytes)  // NOLINT(google-explicit-*)
      : Buffer(copy_of(bytes)) {}
  Buffer(std::initializer_list<std::uint8_t> bytes)  // NOLINT
      : Buffer(copy_of({bytes.begin(), bytes.size()})) {}

  Buffer(const Buffer& other) noexcept
      : slab_(other.slab_), off_(other.off_), len_(other.len_) {
    if (slab_ != nullptr) BufferPool::retain(slab_);
  }
  Buffer(Buffer&& other) noexcept
      : slab_(other.slab_), off_(other.off_), len_(other.len_) {
    other.slab_ = nullptr;
    other.off_ = other.len_ = 0;
  }
  Buffer& operator=(const Buffer& other) noexcept {
    if (this != &other) {
      Buffer tmp(other);
      swap(tmp);
    }
    return *this;
  }
  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      reset();
      slab_ = other.slab_;
      off_ = other.off_;
      len_ = other.len_;
      other.slab_ = nullptr;
      other.off_ = other.len_ = 0;
    }
    return *this;
  }
  Buffer& operator=(const std::vector<std::uint8_t>& bytes) {
    *this = copy_of(bytes);
    return *this;
  }
  Buffer& operator=(std::initializer_list<std::uint8_t> bytes) {
    *this = copy_of({bytes.begin(), bytes.size()});
    return *this;
  }
  ~Buffer() { reset(); }

  /// A zero-filled pooled buffer of `size` bytes behind `headroom`.
  [[nodiscard]] static Buffer allocate(std::size_t size,
                                       std::size_t headroom = kDefaultHeadroom);
  /// Imports `bytes` into a pooled slab (counted as one copy).
  [[nodiscard]] static Buffer copy_of(std::span<const std::uint8_t> bytes,
                                      std::size_t headroom = kDefaultHeadroom);

  [[nodiscard]] std::size_t size() const { return len_; }
  [[nodiscard]] bool empty() const { return len_ == 0; }
  [[nodiscard]] const std::uint8_t* data() const {
    return slab_ == nullptr ? nullptr : slab_->data() + off_;
  }
  [[nodiscard]] const std::uint8_t* begin() const { return data(); }
  [[nodiscard]] const std::uint8_t* end() const { return data() + len_; }
  [[nodiscard]] std::uint8_t operator[](std::size_t i) const {
    return data()[i];
  }

  [[nodiscard]] std::span<const std::uint8_t> span() const {
    return {data(), len_};
  }
  operator std::span<const std::uint8_t>() const { return span(); }  // NOLINT

  /// Bytes available in front of the view for in-place prepends.
  [[nodiscard]] std::size_t headroom() const { return off_; }
  /// True while this view is the slab's only owner (in-place writes legal).
  [[nodiscard]] bool unique() const {
    return slab_ != nullptr && slab_->refs == 1;
  }
  [[nodiscard]] std::uint32_t refcount() const {
    return slab_ == nullptr ? 0 : slab_->refs;
  }

  /// Mutable access; copies the slab first if it is shared (counted).
  [[nodiscard]] std::uint8_t* mutable_data();

  /// Fills with `count` copies of `value` (vector-API compatibility).
  void assign(std::size_t count, std::uint8_t value);

  /// A sub-view sharing the slab (no bytes move). Out-of-range throws.
  [[nodiscard]] Buffer slice(std::size_t offset) const;
  [[nodiscard]] Buffer slice(std::size_t offset, std::size_t length) const;

  /// Grows the view forward by writing `header` immediately before the
  /// current first byte. In place when the slab is unique and headroom
  /// suffices; otherwise a counted copy into a fresh slab. Either way the
  /// result is byte-identical — only the pool counters differ.
  void prepend(std::span<const std::uint8_t> header);

  /// Content equality (the vector semantics tests rely on).
  friend bool operator==(const Buffer& a, const Buffer& b) {
    return a.len_ == b.len_ &&
           (a.len_ == 0 || std::memcmp(a.data(), b.data(), a.len_) == 0);
  }
  friend bool operator==(const Buffer& a, const std::vector<std::uint8_t>& b) {
    return a.len_ == b.size() &&
           (a.len_ == 0 || std::memcmp(a.data(), b.data(), a.len_) == 0);
  }
  friend bool operator==(const std::vector<std::uint8_t>& a, const Buffer& b) {
    return b == a;
  }

  void swap(Buffer& other) noexcept {
    std::swap(slab_, other.slab_);
    std::swap(off_, other.off_);
    std::swap(len_, other.len_);
  }

 private:
  friend class BufferWriter;
  Buffer(BufferPool::Slab* slab, std::uint32_t off, std::uint32_t len)
      : slab_(slab), off_(off), len_(len) {}

  void reset();

  BufferPool::Slab* slab_ = nullptr;
  std::uint32_t off_ = 0;
  std::uint32_t len_ = 0;
};

/// Network-order write cursor over a pooled slab — the Buffer-producing
/// sibling of util::BufWriter (same method surface, `take()` yields a Buffer
/// whose headroom is still available for later prepends).
class BufferWriter {
 public:
  explicit BufferWriter(std::size_t reserve = 0,
                        std::size_t headroom = Buffer::kDefaultHeadroom);

  void u8(std::uint8_t v) {
    ensure(1);
    cur()[len_++] = v;
  }
  void u16(std::uint16_t v) {
    ensure(2);
    cur()[len_++] = static_cast<std::uint8_t>(v >> 8);
    cur()[len_++] = static_cast<std::uint8_t>(v & 0xff);
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v & 0xffff));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v & 0xffffffffu));
  }
  void bytes(std::span<const std::uint8_t> data) {
    ensure(data.size());
    if (!data.empty()) std::memcpy(cur() + len_, data.data(), data.size());
    len_ += static_cast<std::uint32_t>(data.size());
  }
  void zeros(std::size_t count) {
    ensure(count);
    std::memset(cur() + len_, 0, count);
    len_ += static_cast<std::uint32_t>(count);
  }
  void patch_u16(std::size_t offset, std::uint16_t v);

  [[nodiscard]] std::size_t size() const { return len_; }
  /// Finishes the write and hands the bytes over as a Buffer (headroom
  /// preserved). The writer is empty afterwards.
  [[nodiscard]] Buffer take();

  ~BufferWriter();
  BufferWriter(const BufferWriter&) = delete;
  BufferWriter& operator=(const BufferWriter&) = delete;

 private:
  [[nodiscard]] std::uint8_t* cur() { return slab_->data() + headroom_; }
  void ensure(std::size_t more);

  BufferPool::Slab* slab_ = nullptr;
  std::uint32_t headroom_;
  std::uint32_t len_ = 0;
};

}  // namespace mrmtp::net
