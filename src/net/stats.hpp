// Slab storage for the per-frame hot counters (SoA hot-state layout).
//
// Every delivered frame bumps a handful of counters: the link's directional
// delivery/drop stats and the two ports' traffic tallies. With thousands of
// routers (64-PoD fabrics) those counters used to live inline in Link/Port
// objects scattered across the heap, so the per-frame counter writes — and
// the harness aggregation sweeps that read EVERY counter in the fabric —
// walked pointer-chased allocations. The SimContext now owns one StatsArena
// per shard; links and ports allocate their counter blocks from it at wiring
// time and keep a stable pointer. Blocks are packed into fixed-size chunks
// (contiguous, cache-resident, never reallocated), and the dense allocation
// ids follow wiring order, so a whole-fabric sweep is a linear scan.
//
// Per-shard ownership also means a sharded run's counter writes stay on the
// owning thread's slab pages instead of false-sharing one global array.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/frame.hpp"

namespace mrmtp::net {

/// Per-direction delivery/drop counters of one Link.
struct LinkDirStats {
  std::uint64_t delivered = 0;
  std::uint64_t dropped_link_down = 0;   // sender-side port down
  std::uint64_t dropped_dst_down = 0;    // receiver-side port down at arrival
  std::uint64_t dropped_impairment = 0;  // random loss (static or gray)
  std::uint64_t dropped_blackhole = 0;   // directional blackhole
  std::uint64_t dropped_queue_full = 0;  // output-queue tail drop (any class)
  std::uint64_t duplicated = 0;
  /// Subset of dropped_queue_full that was control-class (hello / control /
  /// ACK). Nonzero here under congestion is the smoking gun for false dead
  /// declarations; priority mode exists to keep it at zero.
  std::uint64_t dropped_queue_control = 0;
  /// High-water serialization backlog (ns) observed at frame admission,
  /// split by the admitted frame's band. In shared-FIFO mode both classes
  /// see the same queue, so these record the shared backlog as each class
  /// encountered it.
  std::uint64_t control_backlog_hw_ns = 0;
  std::uint64_t data_backlog_hw_ns = 0;

  [[nodiscard]] std::uint64_t dropped_total() const {
    return dropped_link_down + dropped_dst_down + dropped_impairment +
           dropped_blackhole + dropped_queue_full;
  }
};

/// Both directions plus whole-link aggregates (the pre-gray-failure API).
/// Direction 0 is a() -> b() — `Link::Dir` casts to the right index, but the
/// struct lives here (below the Link class) so the arena can store it.
struct LinkStats {
  LinkDirStats ab;  // a() -> b()
  LinkDirStats ba;  // b() -> a()

  template <typename DirT>  // Link::Dir or a raw direction index
  [[nodiscard]] const LinkDirStats& dir(DirT d) const {
    return static_cast<int>(d) == 0 ? ab : ba;
  }
  [[nodiscard]] std::uint64_t delivered() const {
    return ab.delivered + ba.delivered;
  }
  [[nodiscard]] std::uint64_t dropped_link_down() const {
    return ab.dropped_link_down + ba.dropped_link_down;
  }
  [[nodiscard]] std::uint64_t dropped_dst_down() const {
    return ab.dropped_dst_down + ba.dropped_dst_down;
  }
  [[nodiscard]] std::uint64_t dropped_impairment() const {
    return ab.dropped_impairment + ba.dropped_impairment;
  }
  [[nodiscard]] std::uint64_t dropped_blackhole() const {
    return ab.dropped_blackhole + ba.dropped_blackhole;
  }
  [[nodiscard]] std::uint64_t dropped_queue_full() const {
    return ab.dropped_queue_full + ba.dropped_queue_full;
  }
  [[nodiscard]] std::uint64_t dropped_queue_control() const {
    return ab.dropped_queue_control + ba.dropped_queue_control;
  }
  [[nodiscard]] std::uint64_t duplicated() const {
    return ab.duplicated + ba.duplicated;
  }
};

/// Chunked slab of T: stable addresses (chunks never move), contiguous
/// storage within a chunk, dense ids in allocation order. alloc() is the
/// only mutator; blocks live until the arena does (wiring is append-only).
template <typename T>
class StatsSlab {
 public:
  static constexpr std::size_t kChunk = 256;

  T& alloc() {
    if (count_ % kChunk == 0) {
      chunks_.push_back(std::make_unique<T[]>(kChunk));
    }
    T& slot = chunks_[count_ / kChunk][count_ % kChunk];
    ++count_;
    return slot;
  }

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] T& operator[](std::size_t id) {
    return chunks_[id / kChunk][id % kChunk];
  }
  [[nodiscard]] const T& operator[](std::size_t id) const {
    return chunks_[id / kChunk][id % kChunk];
  }

 private:
  std::vector<std::unique_ptr<T[]>> chunks_;
  std::size_t count_ = 0;
};

/// One per SimContext (i.e. one per shard): the counter blocks of every
/// link and port wired on that shard's context.
class StatsArena {
 public:
  TrafficStats& alloc_traffic() { return traffic_.alloc(); }
  LinkStats& alloc_link() { return links_.alloc(); }

  [[nodiscard]] const StatsSlab<TrafficStats>& traffic() const {
    return traffic_;
  }
  [[nodiscard]] const StatsSlab<LinkStats>& links() const { return links_; }

 private:
  StatsSlab<TrafficStats> traffic_;
  StatsSlab<LinkStats> links_;
};

}  // namespace mrmtp::net
