// Slab storage for the per-frame hot counters (SoA hot-state layout).
//
// Every delivered frame bumps a handful of counters: the link's directional
// delivery/drop stats and the two ports' traffic tallies. With thousands of
// routers (64-PoD fabrics) those counters used to live inline in Link/Port
// objects scattered across the heap, so the per-frame counter writes — and
// the harness aggregation sweeps that read EVERY counter in the fabric —
// walked pointer-chased allocations. The SimContext now owns one StatsArena
// per shard; links and ports allocate their counter blocks from it at wiring
// time and keep a stable pointer. Blocks are packed into fixed-size chunks
// (contiguous, cache-resident, never reallocated), and the dense allocation
// ids follow wiring order, so a whole-fabric sweep is a linear scan.
//
// Per-shard ownership also means a sharded run's counter writes stay on the
// owning thread's slab pages instead of false-sharing one global array.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/frame.hpp"

namespace mrmtp::net {

/// Per-direction delivery/drop counters of one Link.
struct LinkDirStats {
  std::uint64_t delivered = 0;
  std::uint64_t dropped_link_down = 0;   // sender-side port down
  std::uint64_t dropped_dst_down = 0;    // receiver-side port down at arrival
  std::uint64_t dropped_impairment = 0;  // random loss (static or gray)
  std::uint64_t dropped_blackhole = 0;   // directional blackhole
  std::uint64_t dropped_queue_full = 0;  // output-queue tail drop (any class)
  std::uint64_t duplicated = 0;
  /// Subset of dropped_queue_full that was control-class (hello / control /
  /// ACK). Nonzero here under congestion is the smoking gun for false dead
  /// declarations; priority mode exists to keep it at zero.
  std::uint64_t dropped_queue_control = 0;
  /// High-water serialization backlog (ns) observed at frame admission,
  /// split by the admitted frame's band. In shared-FIFO mode both classes
  /// see the same queue, so these record the shared backlog as each class
  /// encountered it.
  std::uint64_t control_backlog_hw_ns = 0;
  std::uint64_t data_backlog_hw_ns = 0;

  /// Finite-buffer / congestion-control counters, per class (all stay zero
  /// unless the sending node has a SwitchBuffer enabled):
  ///   ecn_marked_*   — CE marks applied at band admission, split by band.
  ///   pause_tx       — PFC PAUSE/RESUME frames that traveled this direction
  ///                    (the sender asking its upstream peer to stop).
  ///   pause_rx       — pause transitions applied to this direction's data
  ///                    band by a received PFC frame.
  ///   dropped_buffer — data admissions refused because the shared buffer
  ///                    pool (or the port's dynamic-threshold cap) was
  ///                    exhausted. Disjoint from dropped_queue_full.
  ///   pause_ns       — cumulative time this direction's data band spent
  ///                    paused.
  std::uint64_t ecn_marked_data = 0;
  std::uint64_t ecn_marked_ctrl = 0;
  std::uint64_t pause_tx = 0;
  std::uint64_t pause_rx = 0;
  std::uint64_t dropped_buffer = 0;
  std::uint64_t pause_ns = 0;

  /// Weighted-multipath / flowlet telemetry (stay zero unless a router runs
  /// with PathSelect != kHrw):
  ///   flowlet_reroutes    — an existing flow re-drew its weighted choice
  ///                         after an idle gap and landed on this direction
  ///                         (counted at the NEW egress).
  ///   wcmp_weight_updates — weight recomputations that touched this
  ///                         direction's egress (route installs with WCMP
  ///                         weights, MTP up-cache weight rebuilds).
  std::uint64_t flowlet_reroutes = 0;
  std::uint64_t wcmp_weight_updates = 0;

  [[nodiscard]] std::uint64_t ecn_marked() const {
    return ecn_marked_data + ecn_marked_ctrl;
  }

  [[nodiscard]] std::uint64_t dropped_total() const {
    return dropped_link_down + dropped_dst_down + dropped_impairment +
           dropped_blackhole + dropped_queue_full + dropped_buffer;
  }
};

/// Both directions plus whole-link aggregates (the pre-gray-failure API).
/// Direction 0 is a() -> b() — `Link::Dir` casts to the right index, but the
/// struct lives here (below the Link class) so the arena can store it.
struct LinkStats {
  LinkDirStats ab;  // a() -> b()
  LinkDirStats ba;  // b() -> a()

  template <typename DirT>  // Link::Dir or a raw direction index
  [[nodiscard]] const LinkDirStats& dir(DirT d) const {
    return static_cast<int>(d) == 0 ? ab : ba;
  }
  [[nodiscard]] std::uint64_t delivered() const {
    return ab.delivered + ba.delivered;
  }
  [[nodiscard]] std::uint64_t dropped_link_down() const {
    return ab.dropped_link_down + ba.dropped_link_down;
  }
  [[nodiscard]] std::uint64_t dropped_dst_down() const {
    return ab.dropped_dst_down + ba.dropped_dst_down;
  }
  [[nodiscard]] std::uint64_t dropped_impairment() const {
    return ab.dropped_impairment + ba.dropped_impairment;
  }
  [[nodiscard]] std::uint64_t dropped_blackhole() const {
    return ab.dropped_blackhole + ba.dropped_blackhole;
  }
  [[nodiscard]] std::uint64_t dropped_queue_full() const {
    return ab.dropped_queue_full + ba.dropped_queue_full;
  }
  [[nodiscard]] std::uint64_t dropped_queue_control() const {
    return ab.dropped_queue_control + ba.dropped_queue_control;
  }
  [[nodiscard]] std::uint64_t duplicated() const {
    return ab.duplicated + ba.duplicated;
  }
  [[nodiscard]] std::uint64_t ecn_marked() const {
    return ab.ecn_marked() + ba.ecn_marked();
  }
  [[nodiscard]] std::uint64_t pause_tx() const {
    return ab.pause_tx + ba.pause_tx;
  }
  [[nodiscard]] std::uint64_t pause_rx() const {
    return ab.pause_rx + ba.pause_rx;
  }
  [[nodiscard]] std::uint64_t dropped_buffer() const {
    return ab.dropped_buffer + ba.dropped_buffer;
  }
  [[nodiscard]] std::uint64_t flowlet_reroutes() const {
    return ab.flowlet_reroutes + ba.flowlet_reroutes;
  }
  [[nodiscard]] std::uint64_t wcmp_weight_updates() const {
    return ab.wcmp_weight_updates + ba.wcmp_weight_updates;
  }
};

/// Flowlet-switching state of one router: flow key -> (last departure time,
/// chosen egress port). A fixed-size direct-mapped array with a short linear
/// probe run; when the run is full the stalest slot (oldest last_ns) is
/// evicted. Losing a slot is always safe — the evicted flow simply re-draws
/// its weighted choice on its next packet, exactly as if its idle gap had
/// expired. Lives in the per-shard StatsArena, so accesses are single-thread
/// by construction (TSan-clean under the async sharded engine).
struct FlowletTable {
  struct Slot {
    std::uint64_t key = 0;      // mixed flow hash; 0 only while unused
    std::int64_t last_ns = -1;  // sim time of the newest departure; -1 empty
    std::uint32_t port = 0;     // egress chosen for the current flowlet
  };
  static constexpr std::size_t kSlots = 512;  // power of two
  static constexpr std::size_t kProbe = 4;    // linear probe run length

  Slot slots[kSlots] = {};

  /// The slot holding `key`, or — if `key` is absent from its probe run —
  /// the eviction victim (stalest slot in the run). The caller detects the
  /// miss via `slot.key != key` and re-draws before overwriting.
  [[nodiscard]] Slot& probe(std::uint64_t key) {
    const std::size_t base = static_cast<std::size_t>(key) & (kSlots - 1);
    Slot* victim = nullptr;
    for (std::size_t i = 0; i < kProbe; ++i) {
      Slot& s = slots[(base + i) & (kSlots - 1)];
      if (s.key == key) return s;
      if (victim == nullptr || s.last_ns < victim->last_ns) victim = &s;
    }
    return *victim;
  }
};

/// Occupancy / admission counters of one switch's shared egress buffer,
/// slab-allocated in the StatsArena like every other per-frame-hot block.
/// Occupancy is accounted per class: the control band keeps its own
/// serialization-time carve-out and is never charged to the data pool, so
/// `ctrl_admitted` counts frames, not pool bytes.
struct SwitchBufferStats {
  std::uint64_t data_admitted = 0;       // data frames charged to the pool
  std::uint64_t ctrl_admitted = 0;       // control frames (carve-out band)
  std::uint64_t dropped = 0;             // admissions refused (pool/cap)
  std::uint64_t ecn_marked = 0;          // CE marks applied by this switch
  std::uint64_t pause_onsets = 0;        // XOFF transitions signalled
  std::uint64_t resume_onsets = 0;       // XON transitions signalled
  std::uint64_t occupancy_hw = 0;        // pool-occupancy high-water (bytes)
  std::uint64_t port_occupancy_hw = 0;   // worst single egress port (bytes)
};

/// Chunked slab of T: stable addresses (chunks never move), contiguous
/// storage within a chunk, dense ids in allocation order. alloc() is the
/// only mutator; blocks live until the arena does (wiring is append-only).
template <typename T>
class StatsSlab {
 public:
  static constexpr std::size_t kChunk = 256;

  T& alloc() {
    if (count_ % kChunk == 0) {
      chunks_.push_back(std::make_unique<T[]>(kChunk));
    }
    T& slot = chunks_[count_ / kChunk][count_ % kChunk];
    ++count_;
    return slot;
  }

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] T& operator[](std::size_t id) {
    return chunks_[id / kChunk][id % kChunk];
  }
  [[nodiscard]] const T& operator[](std::size_t id) const {
    return chunks_[id / kChunk][id % kChunk];
  }

 private:
  std::vector<std::unique_ptr<T[]>> chunks_;
  std::size_t count_ = 0;
};

/// One per SimContext (i.e. one per shard): the counter blocks of every
/// link and port wired on that shard's context.
class StatsArena {
 public:
  TrafficStats& alloc_traffic() { return traffic_.alloc(); }
  LinkStats& alloc_link() { return links_.alloc(); }
  SwitchBufferStats& alloc_buffer() { return buffers_.alloc(); }
  FlowletTable& alloc_flowlets() { return flowlets_.alloc(); }

  [[nodiscard]] const StatsSlab<TrafficStats>& traffic() const {
    return traffic_;
  }
  [[nodiscard]] const StatsSlab<LinkStats>& links() const { return links_; }
  [[nodiscard]] const StatsSlab<SwitchBufferStats>& buffers() const {
    return buffers_;
  }
  [[nodiscard]] const StatsSlab<FlowletTable>& flowlets() const {
    return flowlets_;
  }

 private:
  StatsSlab<TrafficStats> traffic_;
  StatsSlab<LinkStats> links_;
  StatsSlab<SwitchBufferStats> buffers_;
  StatsSlab<FlowletTable> flowlets_;  // allocated only when flowlets enabled
};

}  // namespace mrmtp::net
