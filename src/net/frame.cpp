#include "net/frame.hpp"

#include <cstdio>

namespace mrmtp::net {

std::string MacAddr::str() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", bytes[0],
                bytes[1], bytes[2], bytes[3], bytes[4], bytes[5]);
  return buf;
}

std::string_view to_string(TrafficClass tc) {
  switch (tc) {
    case TrafficClass::kMtpControl: return "mtp-control";
    case TrafficClass::kMtpHello: return "mtp-hello";
    case TrafficClass::kMtpData: return "mtp-data";
    case TrafficClass::kBgpUpdate: return "bgp-update";
    case TrafficClass::kBgpKeepalive: return "bgp-keepalive";
    case TrafficClass::kBfd: return "bfd";
    case TrafficClass::kTcpAck: return "tcp-ack";
    case TrafficClass::kIpData: return "ip-data";
    case TrafficClass::kOther: return "other";
    case TrafficClass::kPfc: return "pfc";
  }
  return "?";
}

std::vector<std::uint8_t> Frame::serialize() const {
  util::BufWriter w(wire_size());
  w.bytes(dst.bytes.data(), dst.bytes.size());
  w.bytes(src.bytes.data(), src.bytes.size());
  w.u16(static_cast<std::uint16_t>(ethertype));
  if (!payload.empty()) w.bytes(payload.data(), payload.size());
  return w.take();
}

}  // namespace mrmtp::net
