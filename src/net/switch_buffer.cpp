#include "net/switch_buffer.hpp"

#include <algorithm>

#include "net/link.hpp"
#include "net/node.hpp"

namespace mrmtp::net {

SwitchBuffer::SwitchBuffer(Node& owner, const Params& params)
    : owner_(&owner),
      params_(params),
      effective_pool_(params.pool_bytes),
      stats_(&owner.ctx().stats.alloc_buffer()) {}

SwitchBuffer::PortState& SwitchBuffer::state(std::uint32_t port_no) {
  if (port_no >= ports_.size()) ports_.resize(port_no + 1);
  return ports_[port_no];
}

bool SwitchBuffer::ingress_paused(std::uint32_t port_no) const {
  return port_no < ports_.size() && ports_[port_no].paused_peer;
}

bool SwitchBuffer::admit_egress(std::uint32_t port_no, std::uint64_t bytes) {
  PortState& ps = state(port_no);
  if (pool_used_ + bytes > effective_pool_) {
    ++stats_->dropped;
    return false;
  }
  if (params_.dt_alpha > 0) {
    std::uint64_t free = effective_pool_ - pool_used_;
    auto cap = params_.port_reserve_bytes +
               static_cast<std::uint64_t>(params_.dt_alpha *
                                          static_cast<double>(free));
    if (ps.egress_bytes + bytes > cap) {
      ++stats_->dropped;
      return false;
    }
  }
  ps.egress_bytes += bytes;
  pool_used_ += bytes;
  ++stats_->data_admitted;
  stats_->occupancy_hw = std::max(stats_->occupancy_hw, pool_used_);
  stats_->port_occupancy_hw =
      std::max(stats_->port_occupancy_hw, ps.egress_bytes);
  return true;
}

void SwitchBuffer::release_egress(std::uint32_t port_no, std::uint64_t bytes) {
  PortState& ps = state(port_no);
  ps.egress_bytes -= std::min(bytes, ps.egress_bytes);
  pool_used_ -= std::min(bytes, pool_used_);
}

void SwitchBuffer::charge_ingress(std::uint32_t port_no, std::uint64_t bytes) {
  if (params_.pfc_xoff_bytes == 0) return;
  PortState& ps = state(port_no);
  ps.ingress_bytes += bytes;
  if (!ps.paused_peer && ps.ingress_bytes >= params_.pfc_xoff_bytes) {
    ps.paused_peer = true;
    ++stats_->pause_onsets;
    signal(port_no, true);
  }
}

void SwitchBuffer::release_ingress(std::uint32_t port_no, std::uint64_t bytes) {
  if (params_.pfc_xoff_bytes == 0) return;
  PortState& ps = state(port_no);
  ps.ingress_bytes -= std::min(bytes, ps.ingress_bytes);
  if (ps.paused_peer && ps.ingress_bytes <= params_.pfc_xon_bytes) {
    ps.paused_peer = false;
    ++stats_->resume_onsets;
    signal(port_no, false);
  }
}

void SwitchBuffer::signal(std::uint32_t port_no, bool pause) {
  Port& p = owner_->port(port_no);
  if (!p.connected() || !p.admin_up()) return;
  Frame f;
  f.dst = MacAddr::broadcast();
  f.src = p.mac();
  f.ethertype = EtherType::kFlowControl;
  f.traffic_class = TrafficClass::kPfc;
  // [opcode, band mask]: opcode 1 = PAUSE, 0 = RESUME; only the data band
  // (bit 1) is pausable today.
  f.payload = {static_cast<std::uint8_t>(pause ? 1 : 0), std::uint8_t{0x02}};
  p.link()->note_pause_tx(p);
  owner_->transmit(p, std::move(f));
}

void SwitchBuffer::squeeze(double frac) {
  frac = std::clamp(frac, 0.0, 1.0);
  auto shrunk = static_cast<std::uint64_t>(
      static_cast<double>(params_.pool_bytes) * frac);
  effective_pool_ = std::max<std::uint64_t>(1, shrunk);
}

void SwitchBuffer::restore() { effective_pool_ = params_.pool_bytes; }

bool mark_ce(Frame& frame) {
  int off = frame.ip_offset();
  if (off < 0) return false;
  std::size_t o = static_cast<std::size_t>(off);
  if (frame.payload.size() < o + 20) return false;
  // mutable_data() copies the slab first if it is shared (e.g. a pcap tap
  // retaining the original bytes), so captures can never mutate after the
  // fact.
  std::uint8_t* b = frame.payload.mutable_data() + o;
  if ((b[0] >> 4) != 4) return false;
  std::size_t ihl = static_cast<std::size_t>(b[0] & 0x0f) * 4;
  if (ihl < 20 || frame.payload.size() < o + ihl) return false;
  if ((b[1] & 0x03) == 0x03) return false;  // already CE
  b[1] |= 0x03;
  // Recompute the header checksum (RFC 1071, mirrors ip::internet_checksum —
  // net cannot link against the ip codec).
  b[10] = 0;
  b[11] = 0;
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < ihl; i += 2) {
    sum += static_cast<std::uint32_t>(b[i]) << 8 | b[i + 1];
  }
  while ((sum >> 16) != 0) sum = (sum & 0xffff) + (sum >> 16);
  auto ck = static_cast<std::uint16_t>(~sum);
  b[10] = static_cast<std::uint8_t>(ck >> 8);
  b[11] = static_cast<std::uint8_t>(ck & 0xff);
  return true;
}

}  // namespace mrmtp::net
