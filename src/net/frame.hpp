// Ethernet frames and traffic classification.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/buffer.hpp"
#include "net/mac.hpp"
#include "util/byte_io.hpp"

namespace mrmtp::net {

/// EtherTypes used in this DCN. 0x8850 is the unused type the paper picked
/// for MR-MTP (§VII.F).
enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kMtp = 0x8850,
  /// IEEE 802.3x / 802.1Qbb flow-control frames (PFC PAUSE / RESUME).
  /// Link-local: consumed by the receiving Link, never forwarded.
  kFlowControl = 0x8808,
};

/// Simulation-side classification of a frame's purpose. This never appears on
/// the wire; it exists so per-port byte accounting can split overhead the way
/// the paper splits wireshark captures (BGP UPDATEs vs keep-alives vs data).
enum class TrafficClass : std::uint8_t {
  kMtpControl,    // tree establishment + failure updates
  kMtpHello,      // 1-byte keep-alives
  kMtpData,       // MTP-encapsulated server traffic
  kBgpUpdate,     // BGP UPDATE messages (convergence control overhead)
  kBgpKeepalive,  // BGP KEEPALIVE / OPEN / NOTIFICATION
  kBfd,           // BFD control packets
  kTcpAck,        // pure TCP acknowledgements (no payload)
  kIpData,        // server IP traffic on host links / BGP-routed fabric
  kOther,
  kPfc,           // PFC PAUSE/RESUME backpressure frames (hop-local)
};

[[nodiscard]] std::string_view to_string(TrafficClass tc);
constexpr std::size_t kTrafficClassCount = 10;

/// Control-band membership for class-aware egress queueing: everything a
/// router needs to keep adjacencies and sessions alive under congestion.
/// Pure TCP ACKs ride in the control band because BGP's transport liveness
/// depends on them — a tail-dropped ACK stalls the session's keep-alives
/// just as fatally as a dropped KEEPALIVE itself.
[[nodiscard]] constexpr bool is_control_class(TrafficClass tc) {
  switch (tc) {
    case TrafficClass::kMtpControl:
    case TrafficClass::kMtpHello:
    case TrafficClass::kBgpUpdate:
    case TrafficClass::kBgpKeepalive:
    case TrafficClass::kBfd:
    case TrafficClass::kTcpAck:
    case TrafficClass::kPfc:
      return true;
    case TrafficClass::kMtpData:
    case TrafficClass::kIpData:
    case TrafficClass::kOther:
      return false;
  }
  return false;
}

/// An Ethernet II frame. `wire_size()` counts the 14-byte header plus
/// payload; `padded_wire_size()` additionally applies the 60-byte minimum
/// (64 minus FCS) that a real NIC pads to and wireshark reports — the sizes
/// the paper's overhead figures are built from.
struct Frame {
  MacAddr dst;
  MacAddr src;
  EtherType ethertype = EtherType::kIpv4;
  /// Pooled payload view: copying a Frame shares the slab (refcount bump);
  /// the bytes only move when someone mutates a shared payload.
  Buffer payload;
  TrafficClass traffic_class = TrafficClass::kOther;

  /// Offset of an encapsulated IPv4 header inside `payload` for non-kIpv4
  /// ethertypes (MTP data encap sets it to the MTP data-header size).
  /// kNoInnerIp = no reachable IP header. Plain kIpv4 frames carry theirs at
  /// offset 0 and ignore this field. This is what lets a finite-buffer
  /// egress queue apply an ECN CE mark without understanding every
  /// encapsulation format (net cannot depend on the ip codec layer).
  static constexpr std::uint8_t kNoInnerIp = 0xff;
  std::uint8_t inner_ip_offset = kNoInnerIp;

  static constexpr std::size_t kHeaderSize = 14;
  static constexpr std::size_t kMinWireSize = 60;

  /// Byte offset of the IPv4 header reachable in `payload`, or -1 if none.
  [[nodiscard]] int ip_offset() const {
    if (ethertype == EtherType::kIpv4) return 0;
    if (inner_ip_offset != kNoInnerIp) return inner_ip_offset;
    return -1;
  }

  [[nodiscard]] std::size_t wire_size() const {
    return kHeaderSize + payload.size();
  }

  [[nodiscard]] std::size_t padded_wire_size() const {
    return std::max(wire_size(), kMinWireSize);
  }

  /// Serializes header + payload (no padding, no FCS), e.g. for hex dumps.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
};

/// Per-class frame/byte counters kept by every port in each direction.
struct TrafficStats {
  struct Counter {
    std::uint64_t frames = 0;
    std::uint64_t bytes = 0;         // un-padded L2 bytes
    std::uint64_t padded_bytes = 0;  // with 60-byte Ethernet minimum
  };

  Counter by_class[kTrafficClassCount];

  void record(const Frame& f) {
    auto& c = by_class[static_cast<std::size_t>(f.traffic_class)];
    ++c.frames;
    c.bytes += f.wire_size();
    c.padded_bytes += f.padded_wire_size();
  }

  [[nodiscard]] Counter total() const {
    Counter t;
    for (const auto& c : by_class) {
      t.frames += c.frames;
      t.bytes += c.bytes;
      t.padded_bytes += c.padded_bytes;
    }
    return t;
  }

  [[nodiscard]] const Counter& of(TrafficClass tc) const {
    return by_class[static_cast<std::size_t>(tc)];
  }

  void reset() { *this = TrafficStats{}; }
};

}  // namespace mrmtp::net
