// 48-bit MAC addresses.
//
// MR-MTP frames use the broadcast destination MAC (paper §VII.F): links are
// point-to-point, so broadcast delivers to exactly the peer and avoids ARP.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

namespace mrmtp::net {

struct MacAddr {
  std::array<std::uint8_t, 6> bytes{};

  static constexpr MacAddr broadcast() {
    return MacAddr{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}};
  }

  /// Deterministic locally-administered unicast MAC for (node, port).
  static constexpr MacAddr for_port(std::uint32_t node_id, std::uint32_t port) {
    return MacAddr{{0x02, 0x00,
                    static_cast<std::uint8_t>(node_id >> 8),
                    static_cast<std::uint8_t>(node_id & 0xff),
                    static_cast<std::uint8_t>(port >> 8),
                    static_cast<std::uint8_t>(port & 0xff)}};
  }

  [[nodiscard]] bool is_broadcast() const { return *this == broadcast(); }

  [[nodiscard]] std::string str() const;

  auto operator<=>(const MacAddr&) const = default;
};

}  // namespace mrmtp::net
