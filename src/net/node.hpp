// Node and Port: the device model.
//
// A Node owns numbered ports (1-based, matching the paper's VID derivation,
// which appends the arrival port number). Protocol stacks subclass Node and
// receive frames via handle_frame(). Interface failure is one-sided: the
// owning node gets on_port_down() immediately (the paper's failure script
// records this instant as convergence start); the peer learns nothing until
// its keep-alive dead timer fires, exactly as observed on FABRIC's virtual
// links.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/stats.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace mrmtp::sim {
class ShardBus;
}

namespace mrmtp::net {

class Node;
class Link;
class SwitchBuffer;
struct SwitchBufferParams;

/// Shared simulation services handed to every node. In a sharded run each
/// shard owns one SimContext (scheduler + clock); `shard`/`bus` identify it
/// on the cross-shard mailbox fabric. Single-threaded runs keep the defaults
/// (shard 0, no bus) and every code path degenerates to direct scheduling.
struct SimContext {
  explicit SimContext(std::uint64_t seed = 1) : rng(seed) {}

  sim::Scheduler sched;
  sim::Logger log;
  sim::Rng rng;
  std::uint32_t shard = 0;
  sim::ShardBus* bus = nullptr;
  /// Slab-backed per-frame counters (SoA hot state): every port and link
  /// wired on this context allocates its counter block here, so a shard's
  /// counters are contiguous and whole-fabric stat sweeps are linear scans.
  StatsArena stats;

  [[nodiscard]] sim::Time now() const { return sched.now(); }
};

class Port {
 public:
  /// Allocates the port's traffic counters from the owner context's arena
  /// (defined in node.cpp, after Node).
  Port(Node& owner, std::uint32_t number);

  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  [[nodiscard]] Node& owner() const { return *owner_; }
  /// 1-based port number; MR-MTP appends this to VIDs.
  [[nodiscard]] std::uint32_t number() const { return number_; }
  [[nodiscard]] bool admin_up() const { return admin_up_; }
  [[nodiscard]] bool connected() const { return link_ != nullptr; }
  [[nodiscard]] Link* link() const { return link_; }
  [[nodiscard]] MacAddr mac() const;

  /// The port on the far side of this port's link (nullptr if unwired).
  /// Topology/harness helper only — protocol logic must discover peers via
  /// messages, not by peeking.
  [[nodiscard]] Port* peer() const;

  [[nodiscard]] TrafficStats& tx_stats() { return *tx_; }
  [[nodiscard]] TrafficStats& rx_stats() { return *rx_; }
  [[nodiscard]] const TrafficStats& tx_stats() const { return *tx_; }
  [[nodiscard]] const TrafficStats& rx_stats() const { return *rx_; }

  [[nodiscard]] std::string str() const;  // "S-1-1:2"

 private:
  friend class Node;
  friend class Link;

  Node* owner_;
  std::uint32_t number_;
  Link* link_ = nullptr;
  bool admin_up_ = true;
  /// Stable pointers into the owning SimContext's StatsArena slab.
  TrafficStats* tx_;
  TrafficStats* rx_;
};

class Node {
 public:
  // Ctor/dtor out of line: SwitchBuffer is incomplete here.
  Node(SimContext& ctx, std::string name, std::uint32_t tier);
  virtual ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] SimContext& ctx() { return ctx_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint32_t id() const { return id_; }
  /// Tier in the folded-Clos: 0 = server, 1 = ToR/leaf, 2 = pod spine,
  /// 3 = top spine (and so on for deeper fabrics).
  [[nodiscard]] std::uint32_t tier() const { return tier_; }

  Port& add_port();
  [[nodiscard]] Port& port(std::uint32_t number);
  [[nodiscard]] const Port& port(std::uint32_t number) const;
  [[nodiscard]] std::uint32_t port_count() const {
    return static_cast<std::uint32_t>(ports_.size());
  }

  /// Sends a frame out `out`; silently dropped if the port is down/unwired.
  void transmit(Port& out, Frame frame);

  /// Gives this node a finite shared egress buffer (see switch_buffer.hpp);
  /// every Link admission from this node then charges it. Enabling twice
  /// replaces the buffer with a fresh one (fresh accounting).
  SwitchBuffer& enable_switch_buffer(const SwitchBufferParams& params);
  [[nodiscard]] SwitchBuffer* switch_buffer() { return switch_buffer_.get(); }
  [[nodiscard]] const SwitchBuffer* switch_buffer() const {
    return switch_buffer_.get();
  }

  /// Delivery entry point used by Link: records which port the frame arrived
  /// on (ingress attribution for PFC charging — forwarding is synchronous in
  /// every protocol stack here) and dispatches to handle_frame().
  void receive_frame(Port& in, Frame frame);
  /// 1-based port number of the frame currently being received; 0 outside
  /// receive_frame (self-originated traffic charges no ingress account).
  [[nodiscard]] std::uint32_t current_rx_port() const { return rx_port_no_; }

  /// Administratively fails/restores an interface. Down notifies this node
  /// (on_port_down) at the current instant; the peer is NOT notified.
  void set_interface_down(std::uint32_t port_number);
  void set_interface_up(std::uint32_t port_number);

  /// Invoked once after the topology is fully wired; protocols begin their
  /// state machines (advertisements, session establishment) here.
  virtual void start() {}

  /// Powers the node off: protocols must tear down sessions and wipe all
  /// control-plane state so a later start() is a cold rejoin, not a resume.
  /// The lifecycle engine's reboot primitive; default is stateless no-op.
  virtual void stop() {}

  /// A frame arrived on `in`.
  virtual void handle_frame(Port& in, Frame frame) = 0;

  virtual void on_port_down(Port& port) { (void)port; }
  virtual void on_port_up(Port& port) { (void)port; }

 protected:
  void log(sim::LogLevel level, std::string msg) const;

  SimContext& ctx_;

 private:
  friend class Network;

  std::string name_;
  std::uint32_t id_ = 0;
  std::uint32_t tier_;
  std::vector<std::unique_ptr<Port>> ports_;
  std::unique_ptr<SwitchBuffer> switch_buffer_;
  std::uint32_t rx_port_no_ = 0;
};

}  // namespace mrmtp::net
