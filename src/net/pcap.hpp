// Pcap capture: the simulator's wireshark.
//
// The paper collects tshark captures on every interface to measure update
// and keep-alive overhead (§VI.C, Figs 9/10). PcapWriter produces standard
// libpcap files (LINKTYPE_ETHERNET, microsecond timestamps from the
// simulation clock) that real wireshark/tshark can open; Link::set_tap
// feeds it every delivered frame.
#pragma once

#include <string>
#include <vector>

#include "net/link.hpp"

namespace mrmtp::net {

class PcapWriter {
 public:
  /// One captured frame. The record holds the frame itself — its payload
  /// shares the live slab via refcount (no serialization at capture time),
  /// and that extra reference pins the captured bytes: any later in-place
  /// mutation attempt on the payload is forced into a copy instead.
  struct Record {
    sim::Time at;
    Frame frame;
    TrafficClass traffic_class;  // simulator metadata (not in the file)

    /// Serialized Ethernet bytes, materialized on demand (tests/dumps).
    [[nodiscard]] std::vector<std::uint8_t> bytes() const {
      return frame.serialize();
    }
  };

  /// Captures a frame (shares the payload + timestamps; no copy).
  void capture(sim::Time at, const Frame& frame) {
    records_.push_back(Record{at, frame, frame.traffic_class});
  }

  [[nodiscard]] const std::vector<Record>& records() const { return records_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  void clear() { records_.clear(); }

  /// Serializes the classic libpcap format (magic 0xa1b2c3d4, version 2.4,
  /// LINKTYPE_ETHERNET). Wireshark-compatible.
  [[nodiscard]] std::vector<std::uint8_t> to_pcap() const;

  /// Writes to_pcap() to `path`; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  std::vector<Record> records_;
};

/// Attaches a writer to a link; every frame delivered in either direction
/// is captured (like tshark on both endpoints).
void attach_tap(Link& link, PcapWriter& writer);

}  // namespace mrmtp::net
