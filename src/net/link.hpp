// Full-duplex point-to-point link with propagation delay, serialization at a
// configured bandwidth, and optional impairments (loss / duplication /
// reorder jitter) for failure-injection tests.
#pragma once

#include <cstdint>
#include <functional>

#include "net/node.hpp"
#include "sim/time.hpp"

namespace mrmtp::net {

class Link {
 public:
  struct Params {
    /// One-way propagation delay.
    sim::Duration delay = sim::Duration::micros(5);
    /// Serialization rate in bits per second (10 GbE default).
    std::uint64_t bandwidth_bps = 10'000'000'000ull;
    /// Probability a frame is silently lost (impairment testing).
    double loss_probability = 0.0;
    /// Probability a frame is delivered twice.
    double duplicate_probability = 0.0;
    /// Extra uniform random delay in [0, reorder_jitter] per frame; a value
    /// larger than the inter-frame gap causes reordering.
    sim::Duration reorder_jitter{};
    /// Maximum serialization backlog per direction (output-queue depth in
    /// time units); frames arriving when the transmitter is further behind
    /// are tail-dropped. 1 ms at 10 GbE is ~1.25 MB of buffer.
    sim::Duration max_queue = sim::Duration::millis(1);
  };

  struct Stats {
    std::uint64_t delivered = 0;
    std::uint64_t dropped_link_down = 0;   // sender-side port down
    std::uint64_t dropped_dst_down = 0;    // receiver-side port down at arrival
    std::uint64_t dropped_impairment = 0;  // random loss
    std::uint64_t dropped_queue_full = 0;  // output-queue tail drop
    std::uint64_t duplicated = 0;
  };

  Link(SimContext& ctx, Port& a, Port& b, Params params);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Observer invoked for every frame delivered (either direction) — the
  /// hook pcap capture attaches to.
  using Tap = std::function<void(sim::Time at, const Frame& frame)>;
  void set_tap(Tap tap) { tap_ = std::move(tap); }

  /// Queues `frame` for transmission from `from` toward the other side.
  void transmit(Port& from, Frame frame);

  [[nodiscard]] Port& a() const { return *a_; }
  [[nodiscard]] Port& b() const { return *b_; }
  [[nodiscard]] Port& other(const Port& p) const { return &p == a_ ? *b_ : *a_; }
  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  Params& mutable_params() { return params_; }

 private:
  void deliver(Port& to, Frame frame);

  SimContext& ctx_;
  Port* a_;
  Port* b_;
  Params params_;
  Stats stats_;
  Tap tap_;
  /// Per-direction time the transmitter becomes free (0 = a->b, 1 = b->a).
  sim::Time busy_until_[2];
};

}  // namespace mrmtp::net
