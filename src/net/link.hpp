// Full-duplex point-to-point link with propagation delay, serialization at a
// configured bandwidth, and optional impairments for failure-injection tests.
//
// Impairments come in two layers:
//   * Params carries the static, bidirectional ones set at wiring time
//     (loss / duplication / reorder jitter).
//   * Impairments are per-direction and runtime-mutable — the gray-failure
//     model. A link can blackhole or drop a fraction of frames A->B while
//     B->A stays perfectly healthy (unidirectional optics degradation), and
//     loss can ramp up over time (a dying transceiver) via ramp_loss().
// Stats are kept per direction so a one-way failure is visible as an
// asymmetric drop count.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "net/node.hpp"
#include "net/stats.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace mrmtp::net {

class Link {
 public:
  /// Transmission direction through the link.
  enum class Dir : int { kAToB = 0, kBToA = 1 };

  struct Params {
    /// One-way propagation delay.
    sim::Duration delay = sim::Duration::micros(5);
    /// Serialization rate in bits per second (10 GbE default).
    std::uint64_t bandwidth_bps = 10'000'000'000ull;
    /// Probability a frame is silently lost (impairment testing).
    double loss_probability = 0.0;
    /// Probability a frame is delivered twice.
    double duplicate_probability = 0.0;
    /// Extra uniform random delay in [0, reorder_jitter] per frame; a value
    /// larger than the inter-frame gap causes reordering.
    sim::Duration reorder_jitter{};
    /// Maximum serialization backlog per direction (output-queue depth in
    /// time units); frames arriving when the transmitter is further behind
    /// are tail-dropped. 1 ms at 10 GbE is ~1.25 MB of buffer.
    sim::Duration max_queue = sim::Duration::millis(1);
    /// Class-aware egress queueing: the transmitter serves a strict-priority
    /// control band (hello/control/ACK classes, see is_control_class()) ahead
    /// of data. Data keeps the shared tail-drop bound above; control frames
    /// are only dropped when the control band alone exceeds `control_queue`,
    /// so an incast of data can never starve keep-alives off the wire.
    /// Default off = today's single shared FIFO (the A/B ablation switch).
    bool priority_queues = false;
    /// Guaranteed control-band depth (serialization backlog) when
    /// `priority_queues` is on. 100 us at 10 GbE is ~125 KB — orders of
    /// magnitude more than a fabric's worth of hellos needs.
    sim::Duration control_queue = sim::Duration::micros(100);
  };

  /// Runtime-mutable per-direction gray-failure state. The sender still
  /// serializes normally (its transmitter sees nothing wrong); frames die on
  /// the wire, which is exactly what makes these failures "gray".
  struct Impairments {
    bool blackhole = false;
    /// Directional loss probability; the target value while ramping.
    double loss = 0.0;
    /// Degradation ramp: effective loss moves linearly from `ramp_from` at
    /// `ramp_start` to `loss` at `ramp_start + ramp_over` (then holds).
    double ramp_from = 0.0;
    sim::Time ramp_start{};
    sim::Duration ramp_over{};
  };

  /// Per-direction delivery/drop counters and the two-direction aggregate.
  /// The structs live in net/stats.hpp so the per-context StatsArena can
  /// slab-allocate them (SoA hot state); the old nested names stay valid.
  using DirStats = LinkDirStats;
  using Stats = LinkStats;

  Link(SimContext& ctx, Port& a, Port& b, Params params);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Observer invoked for every frame delivered (either direction) — the
  /// hook pcap capture attaches to.
  using Tap = std::function<void(sim::Time at, const Frame& frame)>;
  void set_tap(Tap tap) { tap_ = std::move(tap); }

  /// Queues `frame` for transmission from `from` toward the other side.
  void transmit(Port& from, Frame frame);

  // --- gray-failure impairments (runtime-mutable, per direction) ---
  void set_loss(Dir dir, double p);
  void set_blackhole(Dir dir, bool on);
  /// Linearly ramps the directional loss from its current effective value to
  /// `target` over `over` (a transceiver degrading instead of dying).
  void ramp_loss(Dir dir, double target, sim::Duration over);
  /// Resets both directions to healthy.
  void clear_impairments();
  /// Resets one direction. Sharded chaos heals each side on its own shard
  /// when the endpoints live on different threads.
  void clear_impairments(Dir dir);

  /// Switches both directions' random draws (jitter / loss / duplication)
  /// onto private streams derived from `seed`. Sharded deployments enable
  /// this on every link so the draw sequence each direction sees depends
  /// only on its own frame order — never on how other entities interleave —
  /// which is what makes 1-shard and N-shard runs produce identical drops.
  void use_stream_rng(std::uint64_t seed);

  [[nodiscard]] bool blackholed(Dir dir) const {
    return impair_[static_cast<int>(dir)].blackhole;
  }
  /// Directional loss at the current instant (ramp evaluated).
  [[nodiscard]] double effective_loss(Dir dir) const;
  /// True if frames sent in `dir` can currently arrive at all (no blackhole,
  /// loss < 1). Port admin state is not considered here.
  [[nodiscard]] bool deliverable(Dir dir) const {
    return !blackholed(dir) && effective_loss(dir) < 1.0;
  }
  [[nodiscard]] const Impairments& impairments(Dir dir) const {
    return impair_[static_cast<int>(dir)];
  }

  /// The direction a frame leaving `from` travels.
  [[nodiscard]] Dir direction_from(const Port& from) const {
    return &from == a_ ? Dir::kAToB : Dir::kBToA;
  }
  [[nodiscard]] static Dir reverse(Dir d) {
    return d == Dir::kAToB ? Dir::kBToA : Dir::kAToB;
  }

  [[nodiscard]] Port& a() const { return *a_; }
  [[nodiscard]] Port& b() const { return *b_; }
  [[nodiscard]] Port& other(const Port& p) const { return &p == a_ ? *b_ : *a_; }
  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] const Stats& stats() const { return *stats_; }
  Params& mutable_params() { return params_; }

  // --- PFC backpressure state (driven by received kFlowControl frames) ---
  /// True while `dir`'s data band is PAUSEd by the receiving peer. The
  /// control band is never paused.
  [[nodiscard]] bool data_paused(Dir dir) const {
    return paused_[static_cast<int>(dir)];
  }
  /// Bytes currently waiting in `dir`'s data band (auditor's deadlock walk:
  /// paused + nonzero = traffic blocked behind the pause).
  [[nodiscard]] std::uint64_t queued_data_bytes(Dir dir) const {
    return band_bytes_[static_cast<int>(dir)][kDataBand];
  }
  /// Cumulative paused time including any pause still in progress (the
  /// DirStats::pause_ns field only counts completed pauses).
  [[nodiscard]] std::uint64_t pause_ns_total(Dir dir) const;
  /// Counts a PFC frame the owner of `from` is about to transmit (bumped by
  /// SwitchBuffer::signal so per-direction pause_tx lands with the rest of
  /// the link counters).
  void note_pause_tx(Port& from) {
    ++dir_stats(direction_from(from)).pause_tx;
  }

  // --- WCMP / flowlet telemetry (bumped by the owning router's forwarding
  //     path; `from` is the egress port on this link) ---
  /// Counts a flowlet that re-drew its weighted choice onto this egress.
  void note_flowlet_reroute(const Port& from) {
    ++dir_stats(direction_from(from)).flowlet_reroutes;
  }
  /// Counts a weight recomputation that touched this egress (route install
  /// with WCMP weights, MTP up-cache weight rebuild).
  void note_weight_update(const Port& from) {
    ++dir_stats(direction_from(from)).wcmp_weight_updates;
  }

 private:
  /// A frame admitted to a band, waiting for the transmitter. `charged` is
  /// the byte count held against the sender's SwitchBuffer pool (0 = not
  /// charged: control frames and non-buffered links), `ingress` the 1-based
  /// arrival port charged for PFC (0 = self-originated).
  struct Pending {
    Frame frame;
    sim::Duration ser;
    std::uint32_t charged = 0;
    std::uint32_t ingress = 0;
  };
  static constexpr int kControlBand = 0;
  static constexpr int kDataBand = 1;

  void deliver(int dir, Port& to, Frame frame, DirStats& dstats);
  /// Serializes `frame` starting no earlier than now (impairments, jitter,
  /// loss and duplication applied) and schedules delivery. Shared tail of the
  /// fast path and the band drain.
  void serialize_and_send(int dir, Frame frame, sim::Duration ser);
  /// Priority-mode admission: fast path when the transmitter is idle,
  /// otherwise band enqueue with per-class depth limits.
  void transmit_priority(int dir, Frame frame);
  /// Finite-buffer admission (the sender node has a SwitchBuffer): priority
  /// banding plus byte-accurate pool/ingress charging, ECN marking, and
  /// respect for an active PAUSE on the data band.
  void transmit_buffered(int dir, Frame frame, SwitchBuffer& sb);
  /// Pops the next frame (control band first) onto the transmitter; rearms
  /// itself at the next transmitter-free instant while frames wait.
  void drain(int dir);
  /// Applies a received PFC frame (traveling `delivery_dir`) to the reverse
  /// direction's data band.
  void apply_flow_control(int delivery_dir, const Frame& frame);
  /// The sending port of direction `dir`.
  [[nodiscard]] Port& sender(int dir) const {
    return dir == static_cast<int>(Dir::kAToB) ? *a_ : *b_;
  }
  DirStats& dir_stats(Dir dir) {
    return dir == Dir::kAToB ? stats_->ab : stats_->ba;
  }
  [[nodiscard]] sim::Duration ser_time(const Frame& frame) const;

  /// The context owning direction `dir`'s transmitter (the sending node's
  /// shard); all serialization state for that direction lives there.
  [[nodiscard]] SimContext& send_ctx(int dir) const { return *end_ctx_[dir]; }
  [[nodiscard]] SimContext& recv_ctx(int dir) const {
    return *end_ctx_[1 - dir];
  }
  [[nodiscard]] sim::Rng& dir_rng(int dir);
  /// Direct schedule in a classic single-context run. In a sharded run every
  /// delivery — same-shard included — rides the ShardBus under a
  /// sharding-invariant order key (sender node, port, send sequence), so
  /// same-instant arrivals at a router break ties identically at any shard
  /// count.
  void schedule_delivery(int dir, sim::Time at, sim::Scheduler::Callback fn);

  /// Endpoint contexts: [0] = a's owner, [1] = b's owner. Identical in every
  /// single-threaded run.
  SimContext* end_ctx_[2];
  Port* a_;
  Port* b_;
  Params params_;
  /// Stable pointer into the wiring context's StatsArena slab.
  Stats* stats_;
  Impairments impair_[2];
  /// Per-direction private draw streams (see use_stream_rng); empty means
  /// draws come from the sending context's shared rng, the legacy behavior.
  std::optional<sim::Rng> stream_rng_[2];
  Tap tap_;
  /// Per-direction time the transmitter becomes free (0 = a->b, 1 = b->a).
  sim::Time busy_until_[2];
  /// Priority-mode waiting rooms: [dir][band]. Empty whenever the analytic
  /// fast path is in use, so shared-FIFO workloads never touch them.
  std::deque<Pending> bands_[2][2];
  /// Serialization backlog held in each band's deque, [dir][band].
  sim::Duration band_backlog_[2][2];
  /// Padded wire bytes held in each band's deque, [dir][band] (ECN
  /// thresholds and the auditor's pause-wait walk read these).
  std::uint64_t band_bytes_[2][2] = {};
  /// PFC pause state per direction (data band only) and the onset instant
  /// of the pause in progress.
  bool paused_[2] = {false, false};
  sim::Time pause_start_[2];
  /// True while a drain event is scheduled for the direction.
  bool drain_armed_[2] = {false, false};
  /// Per-direction delivery send sequence, the low word of the ShardBus
  /// order key. Counts schedule_delivery calls in the sender's execution
  /// order — sharding-invariant by construction. Unused in classic runs.
  std::uint32_t tx_seq_[2] = {0, 0};
};

}  // namespace mrmtp::net
