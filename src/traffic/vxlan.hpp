// VXLAN overlay (RFC 7348) — the deployment model the paper assumes:
// "for VMs running in different servers to collaboratively execute a job,
// we assume that VXLAN is used for inter-rack VM communication. The VM
// traffic is encapsulated in an outer IP header, which carries the
// server's IP address" (§III.A). The fabric (MR-MTP or BGP) only ever sees
// server-to-server UDP, which is exactly why the ToR VID can be derived
// from the *server* subnet.
//
// VtepHost is a server running VMs behind a VXLAN tunnel endpoint: each VM
// has an overlay IP in some VNI (tenant); the VTEP's forwarding table maps
// (vni, overlay IP) -> remote server underlay address, as an SDN controller
// or EVPN would program it.
#pragma once

#include <functional>
#include <map>

#include "traffic/host.hpp"

namespace mrmtp::traffic {

constexpr std::uint16_t kVxlanPort = 4789;

/// RFC 7348 section 5 header: flags, reserved, 24-bit VNI, reserved.
struct VxlanHeader {
  static constexpr std::size_t kSize = 8;

  std::uint32_t vni = 0;  // 24 bits

  [[nodiscard]] std::vector<std::uint8_t> serialize(
      std::span<const std::uint8_t> inner) const {
    util::BufWriter w(kSize + inner.size());
    w.u8(0x08);  // flags: I (valid VNI)
    w.u8(0);
    w.u16(0);
    w.u32(vni << 8);
    w.bytes(inner);
    return w.take();
  }

  /// Prepends the VXLAN header over the inner packet's headroom — the
  /// encapsulation path's zero-copy sibling of serialize().
  [[nodiscard]] net::Buffer encapsulate(net::Buffer inner_packet) const {
    const std::uint8_t hdr[kSize] = {
        0x08,  // flags: I (valid VNI)
        0,
        0,
        0,
        static_cast<std::uint8_t>(vni >> 16),
        static_cast<std::uint8_t>((vni >> 8) & 0xff),
        static_cast<std::uint8_t>(vni & 0xff),
        0};
    inner_packet.prepend(hdr);
    return inner_packet;
  }

  static VxlanHeader parse(std::span<const std::uint8_t> data,
                           std::span<const std::uint8_t>& out_inner) {
    util::BufReader r(data);
    VxlanHeader h;
    std::uint8_t flags = r.u8();
    if ((flags & 0x08) == 0) throw util::CodecError("VXLAN: VNI flag not set");
    r.u8();
    r.u16();
    h.vni = r.u32() >> 8;
    out_inner = r.rest();
    return h;
  }
};

/// A server hosting VMs behind a VXLAN tunnel endpoint.
class VtepHost : public Host {
 public:
  using Host::Host;

  /// Adds a local VM with `overlay_addr` in tenant `vni`. `on_receive`
  /// (optional) observes inner IP packets delivered to this VM.
  using VmReceiver = std::function<void(const ip::Ipv4Header& inner,
                                        std::span<const std::uint8_t> payload)>;
  void add_vm(std::uint32_t vni, ip::Ipv4Addr overlay_addr,
              VmReceiver on_receive = {});

  /// Programs a remote mapping: (vni, overlay) lives behind `server` —
  /// the control-plane state a controller/EVPN would install.
  void add_remote(std::uint32_t vni, ip::Ipv4Addr overlay_addr,
                  ip::Ipv4Addr server);

  void start() override;

  /// Sends an inner IP packet from a local VM to `dst_overlay`. Local VMs
  /// in the same VNI are delivered directly; remote ones are VXLAN-
  /// encapsulated toward their server over the fabric.
  void vm_send(std::uint32_t vni, ip::Ipv4Addr src_overlay,
               ip::Ipv4Addr dst_overlay, net::Buffer payload);

  struct VtepStats {
    std::uint64_t encapsulated = 0;
    std::uint64_t decapsulated = 0;
    std::uint64_t delivered_local = 0;   // VM-to-VM on the same server
    std::uint64_t dropped_no_mapping = 0;
    std::uint64_t dropped_unknown_vm = 0;
  };
  [[nodiscard]] const VtepStats& vtep_stats() const { return vtep_stats_; }
  [[nodiscard]] std::uint64_t vm_received(std::uint32_t vni,
                                          ip::Ipv4Addr overlay_addr) const;

 private:
  struct Vm {
    VmReceiver on_receive;
    std::uint64_t received = 0;
  };
  using OverlayKey = std::pair<std::uint32_t, ip::Ipv4Addr>;

  void deliver_to_vm(std::uint32_t vni, const ip::Ipv4Header& inner,
                     std::span<const std::uint8_t> payload);

  std::map<OverlayKey, Vm> vms_;
  std::map<OverlayKey, ip::Ipv4Addr> remote_;
  VtepStats vtep_stats_;
  std::uint16_t next_id_ = 1;
};

}  // namespace mrmtp::traffic
