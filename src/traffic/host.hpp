// Server hosts and the sequenced traffic generator / receiver analyzer —
// the simulator's version of the paper's custom Basic-Traffic-Generator
// (reference [28]), grown into a multi-flow engine: a host can generate any
// number of concurrent probe flows (each a stream of sequenced UDP datagrams
// keyed by a fabric-unique flow id) and its sink demuxes arrivals into
// per-flow records — bytes, first/last packet, duplicates, reordering, and
// the inter-arrival gap — from which flow completion times are derived.
//
// Sequence tracking is windowed (SeqWindow): duplicate / out-of-order
// detection needs only the most recent kSpan sequence numbers, so sink
// memory stays constant per active flow no matter how many packets a flow
// carries — million-flow campaigns do not accumulate an unbounded seen-set.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>

#include "transport/l3_node.hpp"

namespace mrmtp::traffic {

/// Generator packet: magic, flow id, 64-bit sequence, send timestamp, the
/// flow's total packet count (0 = open-ended stream), padding.
struct ProbePacket {
  static constexpr std::uint32_t kMagic = 0x4d545047;  // "MTPG"
  static constexpr std::size_t kMinSize = 41;
  /// ProbePacket::flags bit: the sender backs off when the sink echoes CE
  /// marks (see FlowConfig::ecn_response).
  static constexpr std::uint8_t kFlagEcnResponse = 0x01;

  std::uint64_t flow_id = 0;
  std::uint64_t seq = 0;
  std::int64_t sent_ns = 0;
  /// Total packets this flow will send; lets the sink detect completion
  /// without out-of-band state. 0 for run-until-stopped probe streams.
  std::uint32_t flow_packets = 0;
  /// Cumulative time this flow's generator spent blocked behind a PFC PAUSE
  /// on its NIC, as of this send. The sink keeps the max per flow, so the
  /// pause-blocked ledger survives even when only a prefix of the flow
  /// arrives. Zero leaves the wire bytes identical to the pre-PFC format.
  std::uint64_t paused_ns = 0;
  std::uint8_t flags = 0;

  /// Serializes into a pooled buffer with headroom for the UDP/IP headers,
  /// so the generator's steady state never copies payload bytes.
  [[nodiscard]] net::Buffer serialize(std::size_t pad_to) const;
  static std::optional<ProbePacket> parse(std::span<const std::uint8_t> data);
};

/// Sink-to-sender congestion notification (CNP-style): sent when a probe
/// arrives CE-marked and the probe requested echoes. Rate-limited per flow.
struct EcnEcho {
  static constexpr std::uint32_t kMagic = 0x4d544745;  // "MTGE"
  static constexpr std::size_t kSize = 12;
  /// Well-known sender-side UDP port the echo targets.
  static constexpr std::uint16_t kPort = 7002;

  std::uint64_t flow_id = 0;

  [[nodiscard]] net::Buffer serialize() const;
  static std::optional<EcnEcho> parse(std::span<const std::uint8_t> data);
};

struct FlowConfig {
  ip::Ipv4Addr dst;
  std::uint16_t src_port = 7000;
  std::uint16_t dst_port = 7001;
  /// Inter-packet gap (back-to-back at line rate when zero-ish).
  sim::Duration gap = sim::Duration::millis(3);
  /// Total packets to send (0 = until stop_flow()).
  std::uint64_t count = 0;
  /// UDP payload size in bytes (>= ProbePacket::kMinSize).
  std::size_t payload_size = 64;
  /// Fabric-unique flow identity carried in every probe. 0 = the host
  /// assigns one ((host address << 32) | local counter, unique across the
  /// fabric). The workload engine passes its own globally sequenced ids.
  std::uint64_t flow_id = 0;
  /// End-to-end ECN response: probes carry kFlagEcnResponse, the sink echoes
  /// CE marks back (EcnEcho to EcnEcho::kPort), and each echo multiplies the
  /// sender's inter-packet gap by 1.5x (capped at 32x; the scale decays
  /// 0.5% per send back toward 1x). Off by default — an open-loop probe
  /// stream ignores marking entirely, which is the tail-drop baseline.
  bool ecn_response = false;
};

/// Bounded sliding-window duplicate / out-of-order classifier: a kSpan-bit
/// circular bitmap anchored at the highest sequence seen. Sequences that
/// fall off the back of the window are "ancient" — unclassifiable without
/// unbounded memory — and are counted instead of stored. sizeof(SeqWindow)
/// is the whole per-flow tracking cost, packet count notwithstanding.
class SeqWindow {
 public:
  static constexpr std::uint64_t kSpan = 1024;

  enum class Verdict : std::uint8_t { kNew, kDuplicate, kAncient };

  Verdict observe(std::uint64_t seq) {
    if (!any_) {
      any_ = true;
      max_ = seq;
      set(seq);
      return Verdict::kNew;
    }
    if (seq > max_) {
      if (seq - max_ >= kSpan) {
        bits_.fill(0);
      } else {
        for (std::uint64_t s = max_ + 1; s < seq; ++s) clear(s);
      }
      set(seq);
      max_ = seq;
      return Verdict::kNew;
    }
    if (max_ - seq >= kSpan) return Verdict::kAncient;
    if (test(seq)) return Verdict::kDuplicate;
    set(seq);
    return Verdict::kNew;
  }

  [[nodiscard]] std::uint64_t max_seq() const { return max_; }
  [[nodiscard]] bool any() const { return any_; }

 private:
  [[nodiscard]] bool test(std::uint64_t s) const {
    return (bits_[(s % kSpan) / 64] >> (s % 64)) & 1u;
  }
  void set(std::uint64_t s) { bits_[(s % kSpan) / 64] |= 1ull << (s % 64); }
  void clear(std::uint64_t s) { bits_[(s % kSpan) / 64] &= ~(1ull << (s % 64)); }

  std::array<std::uint64_t, kSpan / 64> bits_{};
  std::uint64_t max_ = 0;
  bool any_ = false;
};

/// One received flow's ledger at the sink. `max_gap` is per flow: silence
/// between two different flows sharing this sink is not an outage and never
/// pollutes either flow's gap (it used to, when the tally was per host).
struct FlowRecord {
  ip::Ipv4Addr src;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint64_t received = 0;  // deliveries including duplicates
  std::uint64_t unique = 0;    // distinct in-window sequences
  std::uint64_t duplicates = 0;
  std::uint64_t out_of_order = 0;  // first-seen seq below the flow max
  std::uint64_t ancient = 0;       // fell off the tracking window
  std::uint64_t bytes = 0;         // unique payload bytes
  std::uint32_t expected_packets = 0;  // from the probe header (0 = open)
  /// Deliveries that arrived ECN CE-marked (a finite-buffer switch marked
  /// them en route).
  std::uint64_t ecn_marked = 0;
  /// Sender-reported time blocked behind a PFC PAUSE (max over received
  /// probes — the field is cumulative at the sender).
  std::uint64_t paused_ns = 0;
  std::uint64_t echoes_sent = 0;  // CNP-style CE echoes back to the sender
  sim::Time first_arrival{};
  sim::Time last_arrival{};
  sim::Duration max_gap{};
  /// Echo rate-limit state (not telemetry).
  sim::Time last_echo{};

  [[nodiscard]] bool complete() const {
    return expected_packets != 0 && unique >= expected_packets;
  }
};

/// Receiver-side tally, per paper §VI.D — aggregated over every flow the
/// sink has demuxed, so the single-probe-flow fields read exactly as before.
struct SinkStats {
  std::uint64_t received = 0;         // all deliveries, including dups
  std::uint64_t unique_received = 0;  // distinct sequence numbers
  std::uint64_t duplicates = 0;
  std::uint64_t out_of_order = 0;     // first-seen seq below the flow's max
  std::uint64_t ancient = 0;          // beyond any flow's tracking window
  std::uint64_t max_seq_seen = 0;     // max over flows
  sim::Duration max_gap{};            // max per-flow inter-arrival gap
  std::uint64_t flows_seen = 0;
  std::uint64_t flows_complete = 0;
  /// CE-marked deliveries and the echoes they triggered, across all flows.
  std::uint64_t ecn_marked = 0;
  std::uint64_t echoes_sent = 0;
  /// High-water count of live SeqWindows — the proof that tracker memory is
  /// bounded by *concurrent* flows (windows are freed on completion), not by
  /// flow or packet totals.
  std::uint64_t tracker_windows_hw = 0;

  /// Lost = sent minus unique deliveries (the caller knows `sent`).
  [[nodiscard]] std::uint64_t lost(std::uint64_t sent) const {
    return sent > unique_received ? sent - unique_received : 0;
  }
};

class Host : public transport::L3Node {
 public:
  /// A server with a single NIC on port 1 in `subnet`, defaulting to the
  /// ToR at `gateway`.
  Host(net::SimContext& ctx, std::string name, ip::Ipv4Addr addr,
       std::uint8_t prefix_len, ip::Ipv4Addr gateway);

  void start() override;

  [[nodiscard]] ip::Ipv4Addr addr() const { return addr_; }

  // --- generator ---
  /// Starts emitting probe packets per `flow` at the current sim time and
  /// returns the flow's id. Flows are concurrent: starting a second flow
  /// never disturbs the first. Restart semantics are explicit: re-using an
  /// *active* flow id abandons the old generator state (pending send
  /// cancelled, its packets stay in packets_sent()) and begins a fresh
  /// sequence from 0 under the same id — counted in flow_restarts().
  std::uint64_t start_flow(const FlowConfig& flow);
  /// Stops one active flow (no-op if unknown or already complete).
  void stop_flow(std::uint64_t flow_id);
  /// Stops every active flow.
  void stop_flow();
  /// Cumulative probe packets emitted across all flows ever started.
  [[nodiscard]] std::uint64_t packets_sent() const { return total_sent_; }
  [[nodiscard]] std::uint64_t flows_started() const { return flows_started_; }
  [[nodiscard]] std::uint64_t flows_finished() const { return flows_finished_; }
  [[nodiscard]] std::uint64_t flow_restarts() const { return flow_restarts_; }
  [[nodiscard]] std::size_t active_flows() const { return gen_flows_.size(); }
  /// CE echoes received from sinks (ECN-responsive flows only).
  [[nodiscard]] std::uint64_t ecn_echoes_rx() const { return ecn_echoes_rx_; }
  /// Total generator time spent blocked behind a PFC PAUSE on the NIC,
  /// across all flows ever started.
  [[nodiscard]] std::uint64_t gen_paused_ns() const { return gen_paused_ns_; }

  // --- analyzer ---
  /// Begins analyzing probes arriving on `port` (default flow dst port).
  void listen(std::uint16_t port = 7001);
  [[nodiscard]] const SinkStats& sink_stats() const { return sink_; }
  /// Per-flow sink ledgers keyed by flow id.
  [[nodiscard]] const std::unordered_map<std::uint64_t, FlowRecord>&
  flow_records() const {
    return records_;
  }
  [[nodiscard]] const FlowRecord* flow_record(std::uint64_t flow_id) const;
  /// Bytes of live sequence-tracking state (the bounded part; records are
  /// compact PODs kept for telemetry).
  [[nodiscard]] std::size_t tracker_bytes() const {
    return windows_.size() * sizeof(SeqWindow);
  }
  void reset_sink();

 private:
  struct GenFlow {
    FlowConfig cfg;
    std::uint64_t sent = 0;
    std::uint64_t paused_ns = 0;  // cumulative PFC-blocked time
    double gap_scale = 1.0;       // ECN-response multiplicative backoff
    sim::EventId next{};
  };

  void send_next(std::uint64_t flow_id);
  /// Installs the EcnEcho listener on EcnEcho::kPort (once).
  void bind_echo_port();

  ip::Ipv4Addr addr_;
  std::uint8_t prefix_len_;
  ip::Ipv4Addr gateway_;

  std::unordered_map<std::uint64_t, GenFlow> gen_flows_;
  std::uint64_t total_sent_ = 0;
  std::uint64_t flows_started_ = 0;
  std::uint64_t flows_finished_ = 0;
  std::uint64_t flow_restarts_ = 0;
  std::uint32_t next_local_flow_ = 0;
  std::uint64_t ecn_echoes_rx_ = 0;
  std::uint64_t gen_paused_ns_ = 0;
  bool echo_port_bound_ = false;

  SinkStats sink_;
  std::unordered_map<std::uint64_t, FlowRecord> records_;
  std::unordered_map<std::uint64_t, SeqWindow> windows_;
};

}  // namespace mrmtp::traffic
