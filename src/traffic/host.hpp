// Server hosts and the sequenced traffic generator / receiver analyzer —
// the simulator's version of the paper's custom Basic-Traffic-Generator
// (reference [28]): back-to-back UDP datagrams carrying sequence numbers and
// timestamps; the receiver counts lost, duplicated, and out-of-sequence
// packets across an injected failure.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "transport/l3_node.hpp"

namespace mrmtp::traffic {

/// Generator packet: magic, 64-bit sequence, send timestamp, padding.
struct ProbePacket {
  static constexpr std::uint32_t kMagic = 0x4d545047;  // "MTPG"
  static constexpr std::size_t kMinSize = 20;

  std::uint64_t seq = 0;
  std::int64_t sent_ns = 0;

  /// Serializes into a pooled buffer with headroom for the UDP/IP headers,
  /// so the generator's steady state never copies payload bytes.
  [[nodiscard]] net::Buffer serialize(std::size_t pad_to) const;
  static std::optional<ProbePacket> parse(std::span<const std::uint8_t> data);
};

struct FlowConfig {
  ip::Ipv4Addr dst;
  std::uint16_t src_port = 7000;
  std::uint16_t dst_port = 7001;
  /// Inter-packet gap (back-to-back at line rate when zero-ish).
  sim::Duration gap = sim::Duration::millis(3);
  /// Total packets to send (0 = until stop_flow()).
  std::uint64_t count = 0;
  /// UDP payload size in bytes (>= ProbePacket::kMinSize).
  std::size_t payload_size = 64;
};

/// Receiver-side tally, per paper §VI.D.
struct SinkStats {
  std::uint64_t received = 0;         // all deliveries, including dups
  std::uint64_t unique_received = 0;  // distinct sequence numbers
  std::uint64_t duplicates = 0;
  std::uint64_t out_of_order = 0;     // first-seen seq below the max seen
  std::uint64_t max_seq_seen = 0;
  sim::Duration max_gap{};            // longest inter-arrival gap (outage)

  /// Lost = sent minus unique deliveries (the caller knows `sent`).
  [[nodiscard]] std::uint64_t lost(std::uint64_t sent) const {
    return sent > unique_received ? sent - unique_received : 0;
  }
};

class Host : public transport::L3Node {
 public:
  /// A server with a single NIC on port 1 in `subnet`, defaulting to the
  /// ToR at `gateway`.
  Host(net::SimContext& ctx, std::string name, ip::Ipv4Addr addr,
       std::uint8_t prefix_len, ip::Ipv4Addr gateway);

  void start() override;

  [[nodiscard]] ip::Ipv4Addr addr() const { return addr_; }

  // --- generator ---
  /// Starts emitting probe packets per `flow` at the current sim time.
  void start_flow(const FlowConfig& flow);
  void stop_flow();
  [[nodiscard]] std::uint64_t packets_sent() const { return sent_; }

  // --- analyzer ---
  /// Begins analyzing probes arriving on `port` (default flow dst port).
  void listen(std::uint16_t port = 7001);
  [[nodiscard]] const SinkStats& sink_stats() const { return sink_; }
  void reset_sink();

 private:
  void send_next();

  ip::Ipv4Addr addr_;
  std::uint8_t prefix_len_;
  ip::Ipv4Addr gateway_;

  FlowConfig flow_;
  bool flow_active_ = false;
  std::uint64_t sent_ = 0;
  std::unique_ptr<sim::Timer> send_timer_;

  SinkStats sink_;
  std::unordered_set<std::uint64_t> seen_;
  sim::Time last_arrival_{};
  bool any_arrival_ = false;
};

}  // namespace mrmtp::traffic
