#include "traffic/vxlan.hpp"

namespace mrmtp::traffic {

void VtepHost::add_vm(std::uint32_t vni, ip::Ipv4Addr overlay_addr,
                      VmReceiver on_receive) {
  vms_[{vni, overlay_addr}] = Vm{std::move(on_receive), 0};
}

void VtepHost::add_remote(std::uint32_t vni, ip::Ipv4Addr overlay_addr,
                          ip::Ipv4Addr server) {
  remote_[{vni, overlay_addr}] = server;
}

void VtepHost::start() {
  Host::start();
  bind_udp(kVxlanPort, [this](ip::Ipv4Addr src, ip::Ipv4Addr dst,
                              const transport::UdpHeader& hdr,
                              std::span<const std::uint8_t> payload) {
    (void)src;
    (void)dst;
    (void)hdr;
    std::span<const std::uint8_t> inner_bytes;
    VxlanHeader vxlan;
    try {
      vxlan = VxlanHeader::parse(payload, inner_bytes);
    } catch (const util::CodecError&) {
      return;
    }
    std::span<const std::uint8_t> inner_payload;
    ip::Ipv4Header inner;
    try {
      inner = ip::Ipv4Header::parse(inner_bytes, inner_payload);
    } catch (const util::CodecError&) {
      return;
    }
    ++vtep_stats_.decapsulated;
    deliver_to_vm(vxlan.vni, inner, inner_payload);
  });
}

void VtepHost::vm_send(std::uint32_t vni, ip::Ipv4Addr src_overlay,
                       ip::Ipv4Addr dst_overlay, net::Buffer payload) {
  ip::Ipv4Header inner;
  inner.src = src_overlay;
  inner.dst = dst_overlay;
  inner.protocol = ip::IpProto::kUdp;
  inner.identification = next_id_++;

  // Same-server VM? Switch locally without touching the fabric.
  if (vms_.contains({vni, dst_overlay})) {
    ++vtep_stats_.delivered_local;
    deliver_to_vm(vni, inner, payload);
    return;
  }

  auto it = remote_.find({vni, dst_overlay});
  if (it == remote_.end()) {
    ++vtep_stats_.dropped_no_mapping;
    return;
  }

  VxlanHeader vxlan{vni};
  ++vtep_stats_.encapsulated;
  // Outer UDP src port derived from an inner flow hash in real VTEPs; a
  // stable per-destination value keeps ECMP flow affinity here.
  auto src_port = static_cast<std::uint16_t>(
      49152 + (dst_overlay.value() & 0x3fff));
  // Inner IP, VXLAN, then (inside send_udp) UDP and outer IP all prepend
  // into the same buffer's headroom: 20 + 8 + 8 + 20 = 56 of the 64 bytes.
  send_udp(addr(), it->second, src_port, kVxlanPort,
           vxlan.encapsulate(inner.encapsulate(std::move(payload))),
           net::TrafficClass::kIpData);
}

void VtepHost::deliver_to_vm(std::uint32_t vni, const ip::Ipv4Header& inner,
                             std::span<const std::uint8_t> payload) {
  auto it = vms_.find({vni, inner.dst});
  if (it == vms_.end()) {
    ++vtep_stats_.dropped_unknown_vm;
    return;
  }
  ++it->second.received;
  if (it->second.on_receive) it->second.on_receive(inner, payload);
}

std::uint64_t VtepHost::vm_received(std::uint32_t vni,
                                    ip::Ipv4Addr overlay_addr) const {
  auto it = vms_.find({vni, overlay_addr});
  return it == vms_.end() ? 0 : it->second.received;
}

}  // namespace mrmtp::traffic
