#include "traffic/workload.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mrmtp::traffic {

namespace {

/// L2 wire overhead per probe packet: Ethernet 14 + IPv4 20 + UDP 8.
constexpr std::uint64_t kWireOverhead = 42;

sim::Duration packet_gap(std::size_t payload, std::uint64_t bw_bps) {
  const double bits = static_cast<double>(payload + kWireOverhead) * 8.0;
  return sim::Duration::nanos(
      static_cast<std::int64_t>(bits * 1e9 / static_cast<double>(bw_bps)));
}

}  // namespace

FlowSizeCdf::FlowSizeCdf(std::string name, std::vector<Point> points)
    : name_(std::move(name)), points_(std::move(points)) {
  if (points_.size() < 2 || points_.front().cum != 0.0 ||
      points_.back().cum != 1.0) {
    throw std::invalid_argument(
        "FlowSizeCdf: table must span cumulative 0 to 1");
  }
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].cum < points_[i - 1].cum ||
        points_[i].bytes < points_[i - 1].bytes) {
      throw std::invalid_argument("FlowSizeCdf: table must be monotone");
    }
  }
}

FlowSizeCdf FlowSizeCdf::websearch() {
  return FlowSizeCdf("websearch",
                     {{0, 0.0},
                      {10e3, 0.15},
                      {20e3, 0.20},
                      {30e3, 0.30},
                      {50e3, 0.40},
                      {80e3, 0.53},
                      {200e3, 0.60},
                      {1e6, 0.70},
                      {2e6, 0.80},
                      {5e6, 0.90},
                      {10e6, 0.97},
                      {30e6, 1.0}});
}

FlowSizeCdf FlowSizeCdf::hadoop() {
  return FlowSizeCdf("hadoop",
                     {{0, 0.0},
                      {250, 0.20},
                      {500, 0.40},
                      {1e3, 0.60},
                      {2e3, 0.75},
                      {10e3, 0.85},
                      {100e3, 0.92},
                      {1e6, 0.98},
                      {10e6, 1.0}});
}

FlowSizeCdf FlowSizeCdf::fixed(double bytes) {
  return FlowSizeCdf("fixed", {{bytes, 0.0}, {bytes, 1.0}});
}

double FlowSizeCdf::sample(sim::Rng& rng) const {
  const double u = rng.uniform();
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (u <= points_[i].cum) {
      const Point& a = points_[i - 1];
      const Point& b = points_[i];
      const double span = b.cum - a.cum;
      const double frac = span <= 0 ? 0.0 : (u - a.cum) / span;
      return std::max(1.0, a.bytes + (b.bytes - a.bytes) * frac);
    }
  }
  return std::max(1.0, points_.back().bytes);
}

double FlowSizeCdf::mean_bytes() const {
  double mean = 0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    mean += (points_[i].cum - points_[i - 1].cum) *
            (points_[i].bytes + points_[i - 1].bytes) * 0.5;
  }
  return std::max(1.0, mean);
}

std::string_view to_string(Scenario s) {
  switch (s) {
    case Scenario::kRandomPairs: return "random_pairs";
    case Scenario::kIncast: return "incast";
    case Scenario::kAllToAll: return "all_to_all";
  }
  return "?";
}

double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  if (rank == 0) rank = 1;
  return sorted[std::min(sorted.size() - 1, rank - 1)];
}

WorkloadEngine::WorkloadEngine(std::vector<Host*> hosts, WorkloadSpec spec,
                               std::uint64_t seed)
    : hosts_(std::move(hosts)), spec_(std::move(spec)), seed_(seed) {
  if (hosts_.size() < 2) {
    throw std::invalid_argument("WorkloadEngine: needs at least two hosts");
  }
  if (spec_.edge_bw_bps == 0) {
    throw std::invalid_argument(
        "WorkloadEngine: edge_bw_bps unset (harness fills it from the "
        "deployed host-link bandwidth)");
  }
  if (spec_.load <= 0 || spec_.load > 1.0) {
    throw std::invalid_argument("WorkloadEngine: load must be in (0, 1]");
  }
}

void WorkloadEngine::build_schedule(sim::Time start, sim::Duration window) {
  if (!schedule_.empty()) return;
  sim::Rng rng(seed_ ^ 0x574c4f4144ull);  // "WLOAD" stream, decoupled from
                                          // every fabric entity's stream
  const auto n = static_cast<std::uint32_t>(hosts_.size());
  const double mean = spec_.cdf.mean_bytes() * spec_.size_scale;
  const sim::Time end = start + window;
  std::uint64_t next_id = 1;

  auto sample_bytes = [&] {
    return static_cast<std::uint64_t>(std::max(
        1.0, std::round(spec_.cdf.sample(rng) * spec_.size_scale)));
  };
  auto add_flow = [&](std::uint32_t src, std::uint32_t dst,
                      std::uint64_t bytes, sim::Time at) {
    ScheduledFlow f;
    f.id = next_id++;
    f.src = src;
    f.dst = dst;
    f.bytes = bytes;
    f.packets = std::max<std::uint64_t>(
        1, (bytes + spec_.payload_size - 1) / spec_.payload_size);
    f.start = at;
    schedule_.push_back(f);
  };

  switch (spec_.scenario) {
    case Scenario::kRandomPairs: {
      // Aggregate Poisson arrival rate: each host offers `load` of its edge,
      // so lambda = n * load * bw / (8 * mean_flow_bytes) flows per second.
      const double lambda = static_cast<double>(n) * spec_.load *
                            static_cast<double>(spec_.edge_bw_bps) /
                            (8.0 * mean);
      sim::Time t = start;
      while (true) {
        const double dt = -std::log(1.0 - rng.uniform()) / lambda;
        t = t + sim::Duration::seconds_f(dt);
        if (t >= end) break;
        const auto src = static_cast<std::uint32_t>(rng.below(n));
        const auto dst = static_cast<std::uint32_t>(
            (src + 1 + rng.below(n - 1)) % n);
        add_flow(src, dst, sample_bytes(), t);
      }
      break;
    }
    case Scenario::kIncast: {
      // Synchronized fan-in bursts into the last host, paced so the victim
      // edge sees `load` on average while each burst transiently over-
      // subscribes it by ~fanin x.
      const std::uint32_t victim = n - 1;
      const std::uint32_t fanin = std::min(spec_.incast_fanin, n - 1);
      const double round_bytes = static_cast<double>(fanin) * mean;
      const double interval =
          round_bytes * 8.0 /
          (spec_.load * static_cast<double>(spec_.edge_bw_bps));
      std::uint64_t round = 0;
      for (sim::Time t = start; t < end;
           t = t + sim::Duration::seconds_f(interval), ++round) {
        for (std::uint32_t k = 0; k < fanin; ++k) {
          const std::uint32_t idx =
              static_cast<std::uint32_t>((round * fanin + k) % (n - 1));
          const std::uint32_t src = idx < victim ? idx : idx + 1;
          add_flow(src, victim, sample_bytes(), t);
        }
      }
      break;
    }
    case Scenario::kAllToAll: {
      // One flow per ordered pair — a shuffle phase — with starts staggered
      // uniformly over the first 80% of the window.
      for (std::uint32_t src = 0; src < n; ++src) {
        for (std::uint32_t dst = 0; dst < n; ++dst) {
          if (src == dst) continue;
          const sim::Time at =
              start + sim::Duration::seconds_f(rng.uniform() * 0.8 *
                                               window.to_seconds());
          add_flow(src, dst, sample_bytes(), at);
        }
      }
      break;
    }
  }
}

void WorkloadEngine::launch(sim::Time start, sim::Duration window) {
  if (launched_) {
    throw std::logic_error("WorkloadEngine: launch() called twice");
  }
  launched_ = true;
  build_schedule(start, window);

  sent_baseline_.reserve(hosts_.size());
  for (Host* h : hosts_) {
    h->listen(spec_.sink_port);
    sent_baseline_.push_back(h->packets_sent());
  }

  const sim::Duration gap = packet_gap(spec_.payload_size, spec_.edge_bw_bps);
  for (const ScheduledFlow& f : schedule_) {
    Host* src = hosts_[f.src];
    FlowConfig cfg;
    cfg.dst = hosts_[f.dst]->addr();
    // Spread source ports so ECMP/HRW hashing sees distinct flow identities.
    cfg.src_port = static_cast<std::uint16_t>(16384 + f.id % 16384);
    cfg.dst_port = spec_.sink_port;
    cfg.gap = gap;
    cfg.count = f.packets;
    cfg.payload_size = spec_.payload_size;
    cfg.flow_id = f.id;
    cfg.ecn_response = spec_.ecn_response;
    src->ctx().sched.schedule_at(f.start,
                                 [src, cfg] { src->start_flow(cfg); });
  }
}

FlowStats WorkloadEngine::collect(sim::Time end) const {
  FlowStats st;
  std::vector<double> fcts;
  fcts.reserve(schedule_.size());
  double fct_sum = 0;

  for (const ScheduledFlow& f : schedule_) {
    ++st.flows_started;
    st.bytes_offered += f.packets * spec_.payload_size;
    const FlowRecord* rec = hosts_[f.dst]->flow_record(f.id);
    sim::Duration fct{};
    if (rec != nullptr) {
      ++st.flows_delivered;
      st.packets_delivered += rec->received;
      st.unique_delivered += rec->unique;
      st.duplicates += rec->duplicates;
      st.out_of_order += rec->out_of_order;
      st.ancient += rec->ancient;
      st.bytes_delivered += rec->bytes;
      st.ecn_marked += rec->ecn_marked;
      st.ecn_echoes += rec->echoes_sent;
      st.pause_blocked_ns += rec->paused_ns;
      if (rec->max_gap.to_millis() > st.max_gap_ms) {
        st.max_gap_ms = rec->max_gap.to_millis();
      }
    }
    if (rec != nullptr && rec->complete()) {
      ++st.flows_completed;
      fct = rec->last_arrival - f.start;
    } else {
      ++st.flows_incomplete;
      fct = end - f.start;
    }
    const double ms = fct.to_millis();
    fcts.push_back(ms);
    fct_sum += ms;
  }
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    const std::uint64_t base =
        i < sent_baseline_.size() ? sent_baseline_[i] : 0;
    st.packets_sent += hosts_[i]->packets_sent() - base;
  }

  std::sort(fcts.begin(), fcts.end());
  st.fct_samples = fcts.size();
  if (!fcts.empty()) {
    st.fct_p50_ms = quantile_sorted(fcts, 0.50);
    st.fct_p99_ms = quantile_sorted(fcts, 0.99);
    st.fct_p999_ms = quantile_sorted(fcts, 0.999);
    st.fct_mean_ms = fct_sum / static_cast<double>(fcts.size());
    st.fct_min_ms = fcts.front();
    st.fct_max_ms = fcts.back();
  }
  return st;
}

}  // namespace mrmtp::traffic
