#include "traffic/host.hpp"

#include "net/link.hpp"

namespace mrmtp::traffic {

namespace {
/// While the NIC's egress data band is PFC-paused the generator re-polls at
/// this quantum instead of sending — the "NIC honors PAUSE" approximation.
/// Each skipped quantum accrues into the flow's paused_ns ledger.
constexpr sim::Duration kPausePoll = sim::Duration::micros(10);
}  // namespace

net::Buffer ProbePacket::serialize(std::size_t pad_to) const {
  net::BufferWriter w(std::max(pad_to, kMinSize));
  w.u32(kMagic);
  w.u64(flow_id);
  w.u64(seq);
  w.u64(static_cast<std::uint64_t>(sent_ns));
  w.u32(flow_packets);
  w.u64(paused_ns);
  w.u8(flags);
  if (w.size() < pad_to) w.zeros(pad_to - w.size());
  return w.take();
}

std::optional<ProbePacket> ProbePacket::parse(
    std::span<const std::uint8_t> data) {
  if (data.size() < kMinSize) return std::nullopt;
  util::BufReader r(data);
  if (r.u32() != kMagic) return std::nullopt;
  ProbePacket p;
  p.flow_id = r.u64();
  p.seq = r.u64();
  p.sent_ns = static_cast<std::int64_t>(r.u64());
  p.flow_packets = r.u32();
  p.paused_ns = r.u64();
  p.flags = r.u8();
  return p;
}

net::Buffer EcnEcho::serialize() const {
  net::BufferWriter w(kSize);
  w.u32(kMagic);
  w.u64(flow_id);
  return w.take();
}

std::optional<EcnEcho> EcnEcho::parse(std::span<const std::uint8_t> data) {
  if (data.size() < kSize) return std::nullopt;
  util::BufReader r(data);
  if (r.u32() != kMagic) return std::nullopt;
  EcnEcho e;
  e.flow_id = r.u64();
  return e;
}

Host::Host(net::SimContext& ctx, std::string name, ip::Ipv4Addr addr,
           std::uint8_t prefix_len, ip::Ipv4Addr gateway)
    : transport::L3Node(ctx, std::move(name), /*tier=*/0),
      addr_(addr),
      prefix_len_(prefix_len),
      gateway_(gateway) {}

void Host::start() {
  configure_port(1, addr_, prefix_len_);
  routes().set(ip::Ipv4Prefix(ip::Ipv4Addr(0), 0), ip::RouteProto::kStatic,
               {ip::NextHop{gateway_, 1}}, 0);
}

std::uint64_t Host::start_flow(const FlowConfig& flow) {
  std::uint64_t id = flow.flow_id;
  if (id == 0) {
    id = (static_cast<std::uint64_t>(addr_.value()) << 32) |
         ++next_local_flow_;
  }
  auto [it, inserted] = gen_flows_.try_emplace(id);
  GenFlow& g = it->second;
  if (!inserted) {
    // Explicit restart: the old incarnation's pending send is cancelled and
    // its emitted packets remain in total_sent_; the sequence starts over.
    ++flow_restarts_;
    if (g.next.valid()) ctx_.sched.cancel(g.next);
    g.next = {};
  }
  g.cfg = flow;
  g.cfg.flow_id = id;
  g.sent = 0;
  g.paused_ns = 0;
  g.gap_scale = 1.0;
  ++flows_started_;
  if (flow.ecn_response) bind_echo_port();
  send_next(id);
  return id;
}

void Host::bind_echo_port() {
  if (echo_port_bound_) return;
  echo_port_bound_ = true;
  bind_udp(EcnEcho::kPort,
           [this](ip::Ipv4Addr, ip::Ipv4Addr, const transport::UdpHeader&,
                  std::span<const std::uint8_t> payload) {
             auto echo = EcnEcho::parse(payload);
             if (!echo.has_value()) return;
             auto it = gen_flows_.find(echo->flow_id);
             if (it == gen_flows_.end()) return;
             GenFlow& g = it->second;
             if (!g.cfg.ecn_response) return;
             ++ecn_echoes_rx_;
             g.gap_scale = std::min(g.gap_scale * 1.5, 32.0);
           });
}

void Host::stop_flow(std::uint64_t flow_id) {
  auto it = gen_flows_.find(flow_id);
  if (it == gen_flows_.end()) return;
  if (it->second.next.valid()) ctx_.sched.cancel(it->second.next);
  gen_flows_.erase(it);
}

void Host::stop_flow() {
  for (auto& [id, g] : gen_flows_) {
    if (g.next.valid()) ctx_.sched.cancel(g.next);
  }
  gen_flows_.clear();
}

void Host::send_next(std::uint64_t flow_id) {
  auto it = gen_flows_.find(flow_id);
  if (it == gen_flows_.end()) return;
  GenFlow& g = it->second;
  g.next = {};
  if (g.cfg.count != 0 && g.sent >= g.cfg.count) {
    ++flows_finished_;
    gen_flows_.erase(it);
    return;
  }
  // PFC pause-aware pacing: while the ToR holds this NIC's egress direction
  // PAUSEd, poll instead of sending and accrue the blocked time.
  if (const net::Link* l = port(1).link(); l != nullptr) {
    const net::Link::Dir dir = l->direction_from(port(1));
    if (l->data_paused(dir)) {
      g.paused_ns += static_cast<std::uint64_t>(kPausePoll.ns());
      gen_paused_ns_ += static_cast<std::uint64_t>(kPausePoll.ns());
      g.next = ctx_.sched.schedule_after(kPausePoll,
                                         [this, flow_id] { send_next(flow_id); });
      return;
    }
  }
  ProbePacket p;
  p.flow_id = flow_id;
  p.seq = g.sent++;
  p.sent_ns = ctx_.now().ns();
  p.flow_packets = static_cast<std::uint32_t>(g.cfg.count);
  p.paused_ns = g.paused_ns;
  if (g.cfg.ecn_response) p.flags |= ProbePacket::kFlagEcnResponse;
  ++total_sent_;
  send_udp(addr_, g.cfg.dst, g.cfg.src_port, g.cfg.dst_port,
           p.serialize(g.cfg.payload_size), net::TrafficClass::kIpData);
  sim::Duration gap = g.cfg.gap;
  if (g.cfg.ecn_response && g.gap_scale > 1.0) {
    gap = sim::Duration::nanos(
        static_cast<std::int64_t>(static_cast<double>(gap.ns()) * g.gap_scale));
    g.gap_scale = std::max(1.0, g.gap_scale * 0.995);
  }
  g.next =
      ctx_.sched.schedule_after(gap, [this, flow_id] { send_next(flow_id); });
}

void Host::listen(std::uint16_t port_number) {
  bind_udp(port_number, [this](ip::Ipv4Addr src, ip::Ipv4Addr dst,
                               const transport::UdpHeader& hdr,
                               std::span<const std::uint8_t> payload) {
    auto probe = ProbePacket::parse(payload);
    if (!probe.has_value()) return;

    sim::Time now = ctx_.now();
    auto [rit, fresh] = records_.try_emplace(probe->flow_id);
    FlowRecord& rec = rit->second;
    if (fresh) {
      ++sink_.flows_seen;
      rec.src = src;
      rec.src_port = hdr.src_port;
      rec.dst_port = hdr.dst_port;
      rec.first_arrival = now;
      windows_.emplace(probe->flow_id, SeqWindow{});
      sink_.tracker_windows_hw =
          std::max(sink_.tracker_windows_hw,
                   static_cast<std::uint64_t>(windows_.size()));
    } else {
      sim::Duration gap = now - rec.last_arrival;
      if (gap > rec.max_gap) rec.max_gap = gap;
      if (gap > sink_.max_gap) sink_.max_gap = gap;
    }
    rec.last_arrival = now;
    if (probe->flow_packets != 0) rec.expected_packets = probe->flow_packets;
    ++rec.received;
    ++sink_.received;
    sink_.max_seq_seen = std::max(sink_.max_seq_seen, probe->seq);
    rec.paused_ns = std::max(rec.paused_ns, probe->paused_ns);
    if (last_rx_ce()) {
      ++rec.ecn_marked;
      ++sink_.ecn_marked;
      // CNP-style echo back to the sender, rate-limited per flow so an
      // incast's worth of marks doesn't become its own reverse-path storm.
      constexpr sim::Duration kEchoMinGap = sim::Duration::millis(1);
      if ((probe->flags & ProbePacket::kFlagEcnResponse) != 0 &&
          (rec.echoes_sent == 0 || now - rec.last_echo >= kEchoMinGap)) {
        rec.last_echo = now;
        ++rec.echoes_sent;
        ++sink_.echoes_sent;
        EcnEcho echo{.flow_id = probe->flow_id};
        send_udp(dst, src, hdr.dst_port, EcnEcho::kPort, echo.serialize(),
                 net::TrafficClass::kOther);
      }
    }

    auto wit = windows_.find(probe->flow_id);
    if (wit == windows_.end()) {
      // The flow already completed and dropped its window; stragglers can
      // only be duplicates of delivered packets.
      ++rec.duplicates;
      ++sink_.duplicates;
      return;
    }
    SeqWindow& win = wit->second;
    const bool below_max = win.any() && probe->seq < win.max_seq();
    switch (win.observe(probe->seq)) {
      case SeqWindow::Verdict::kDuplicate:
        ++rec.duplicates;
        ++sink_.duplicates;
        return;
      case SeqWindow::Verdict::kAncient:
        ++rec.ancient;
        ++sink_.ancient;
        return;
      case SeqWindow::Verdict::kNew:
        break;
    }
    ++rec.unique;
    ++sink_.unique_received;
    rec.bytes += payload.size();
    if (below_max) {
      ++rec.out_of_order;
      ++sink_.out_of_order;
    }
    if (rec.complete()) {
      windows_.erase(wit);
      ++sink_.flows_complete;
    }
  });
}

const FlowRecord* Host::flow_record(std::uint64_t flow_id) const {
  auto it = records_.find(flow_id);
  return it == records_.end() ? nullptr : &it->second;
}

void Host::reset_sink() {
  sink_ = SinkStats{};
  records_.clear();
  windows_.clear();
}

}  // namespace mrmtp::traffic
