#include "traffic/host.hpp"

namespace mrmtp::traffic {

net::Buffer ProbePacket::serialize(std::size_t pad_to) const {
  net::BufferWriter w(std::max(pad_to, kMinSize));
  w.u32(kMagic);
  w.u64(seq);
  w.u64(static_cast<std::uint64_t>(sent_ns));
  if (w.size() < pad_to) w.zeros(pad_to - w.size());
  return w.take();
}

std::optional<ProbePacket> ProbePacket::parse(
    std::span<const std::uint8_t> data) {
  if (data.size() < kMinSize) return std::nullopt;
  util::BufReader r(data);
  if (r.u32() != kMagic) return std::nullopt;
  ProbePacket p;
  p.seq = r.u64();
  p.sent_ns = static_cast<std::int64_t>(r.u64());
  return p;
}

Host::Host(net::SimContext& ctx, std::string name, ip::Ipv4Addr addr,
           std::uint8_t prefix_len, ip::Ipv4Addr gateway)
    : transport::L3Node(ctx, std::move(name), /*tier=*/0),
      addr_(addr),
      prefix_len_(prefix_len),
      gateway_(gateway) {}

void Host::start() {
  configure_port(1, addr_, prefix_len_);
  routes().set(ip::Ipv4Prefix(ip::Ipv4Addr(0), 0), ip::RouteProto::kStatic,
               {ip::NextHop{gateway_, 1}}, 0);
}

void Host::start_flow(const FlowConfig& flow) {
  flow_ = flow;
  flow_active_ = true;
  sent_ = 0;
  if (!send_timer_) {
    send_timer_ = std::make_unique<sim::Timer>(ctx_.sched, [this] { send_next(); });
  }
  send_next();
}

void Host::stop_flow() {
  flow_active_ = false;
  if (send_timer_) send_timer_->stop();
}

void Host::send_next() {
  if (!flow_active_) return;
  if (flow_.count != 0 && sent_ >= flow_.count) {
    flow_active_ = false;
    return;
  }
  ProbePacket p;
  p.seq = sent_++;
  p.sent_ns = ctx_.now().ns();
  send_udp(addr_, flow_.dst, flow_.src_port, flow_.dst_port,
           p.serialize(flow_.payload_size), net::TrafficClass::kIpData);
  send_timer_->start(flow_.gap);
}

void Host::listen(std::uint16_t port_number) {
  bind_udp(port_number, [this](ip::Ipv4Addr src, ip::Ipv4Addr dst,
                               const transport::UdpHeader& hdr,
                               std::span<const std::uint8_t> payload) {
    (void)src;
    (void)dst;
    (void)hdr;
    auto probe = ProbePacket::parse(payload);
    if (!probe.has_value()) return;

    sim::Time now = ctx_.now();
    if (any_arrival_) {
      sim::Duration gap = now - last_arrival_;
      if (gap > sink_.max_gap) sink_.max_gap = gap;
    }
    any_arrival_ = true;
    last_arrival_ = now;

    ++sink_.received;
    if (seen_.contains(probe->seq)) {
      ++sink_.duplicates;
      return;
    }
    seen_.insert(probe->seq);
    ++sink_.unique_received;
    if (sink_.unique_received > 1 && probe->seq < sink_.max_seq_seen) {
      ++sink_.out_of_order;
    }
    sink_.max_seq_seen = std::max(sink_.max_seq_seen, probe->seq);
  });
}

void Host::reset_sink() {
  sink_ = SinkStats{};
  seen_.clear();
  any_arrival_ = false;
}

}  // namespace mrmtp::traffic
