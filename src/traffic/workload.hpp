// Production workload engine: empirical flow-size distributions, Poisson
// flow arrivals at a target fraction of edge bandwidth, and scripted
// incast / all-to-all scenarios — the traffic a production fabric actually
// serves (millions of short RPCs mixed with elephant transfers), replacing
// single synthetic probes as the basis for every routing-scheme comparison.
//
// The whole flow schedule (arrival instants, src/dst pairing, sampled sizes)
// is drawn up-front from one seeded RNG and then armed on each sender's own
// scheduler, so a run is bit-deterministic at any shard count of the
// parallel fabric engine: the schedule never depends on execution order.
// After the run, collect() joins the schedule against the sinks' per-flow
// records into a FlowStats table with p50/p99/p999 flow completion times.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sim/random.hpp"
#include "traffic/host.hpp"

namespace mrmtp::traffic {

/// Empirical flow-size CDF with linear interpolation between table points —
/// the SWARM-SIM / HPCC traffic-generator technique. Tables are normalized
/// approximations of the published websearch (DCTCP) and hadoop
/// (Facebook) distributions.
class FlowSizeCdf {
 public:
  struct Point {
    double bytes = 0;
    double cum = 0;  // cumulative probability in [0, 1], monotone
  };

  FlowSizeCdf(std::string name, std::vector<Point> points);

  /// Websearch-style: median tens of KB, 3% of flows are 10 MB+ elephants
  /// carrying most of the bytes.
  static FlowSizeCdf websearch();
  /// Hadoop-style: dominated by sub-2 KB RPCs with a thin heavy tail.
  static FlowSizeCdf hadoop();
  /// Degenerate single-size distribution (calibration runs).
  static FlowSizeCdf fixed(double bytes);

  /// Inverse-CDF sample by linear interpolation; always >= 1 byte.
  [[nodiscard]] double sample(sim::Rng& rng) const;
  /// Analytic mean of the interpolated distribution (trapezoid rule) —
  /// the arrival-rate computation uses this, and tests check sampled means
  /// against it.
  [[nodiscard]] double mean_bytes() const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }

 private:
  std::string name_;
  std::vector<Point> points_;
};

enum class Scenario : std::uint8_t {
  kRandomPairs,  // Poisson arrivals, uniform random src/dst pairing
  kIncast,       // synchronized N->1 bursts into one victim host
  kAllToAll,     // one flow per ordered host pair, staggered (shuffle phase)
};

[[nodiscard]] std::string_view to_string(Scenario s);

struct WorkloadSpec {
  FlowSizeCdf cdf = FlowSizeCdf::websearch();
  /// Offered load as a fraction of per-host edge bandwidth (random pairs /
  /// incast); the knob the FCT sweep turns.
  double load = 0.5;
  /// Multiplier on sampled flow sizes — scales a distribution measured on
  /// 10G edges down to the bench's smaller simulated edges.
  double size_scale = 1.0;
  Scenario scenario = Scenario::kRandomPairs;
  /// Senders per synchronized incast round (clamped to host count - 1).
  std::uint32_t incast_fanin = 8;
  /// UDP payload bytes per probe packet.
  std::size_t payload_size = 1000;
  /// Destination port every sink listens on.
  std::uint16_t sink_port = 7001;
  /// Per-host edge bandwidth used for the load -> arrival-rate conversion
  /// and sender pacing. 0 = the harness fills it from the deployed
  /// host-link bandwidth.
  std::uint64_t edge_bw_bps = 0;
  /// Close the congestion loop: flows request CE echoes from their sinks and
  /// back off multiplicatively on each echo (see FlowConfig::ecn_response).
  /// Off = open-loop probes, the tail-drop baseline.
  bool ecn_response = false;
};

/// One planned flow: drawn before the run, joined with sink records after.
struct ScheduledFlow {
  std::uint64_t id = 0;
  std::uint32_t src = 0;  // host indices
  std::uint32_t dst = 0;
  std::uint64_t bytes = 0;
  std::uint64_t packets = 0;
  sim::Time start{};
};

/// Aggregated per-flow accounting with FCT quantiles. Every field derives
/// from simulated time and deterministic counters, so two runs of the same
/// seed — at any shard count — must produce identical values
/// (operator== is the determinism contract the tests assert).
struct FlowStats {
  std::uint64_t flows_started = 0;
  std::uint64_t flows_delivered = 0;   // sink saw at least one packet
  std::uint64_t flows_completed = 0;   // every packet arrived
  std::uint64_t flows_incomplete = 0;  // censored at observation end
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;  // includes duplicates
  std::uint64_t unique_delivered = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t out_of_order = 0;
  std::uint64_t ancient = 0;
  std::uint64_t bytes_offered = 0;
  std::uint64_t bytes_delivered = 0;
  /// Congestion-loop telemetry: CE-marked deliveries, CNP echoes the sinks
  /// sent, and the summed per-flow sender time blocked behind PFC PAUSEs.
  std::uint64_t ecn_marked = 0;
  std::uint64_t ecn_echoes = 0;
  std::uint64_t pause_blocked_ns = 0;
  /// FCT = flow start (sender schedule) -> last packet arrival (sink) for
  /// completed flows; incomplete flows are censored at the observation end —
  /// the user-visible "still waiting" time, identical policy per protocol.
  std::uint64_t fct_samples = 0;
  double fct_p50_ms = 0;
  double fct_p99_ms = 0;
  double fct_p999_ms = 0;
  double fct_mean_ms = 0;
  double fct_min_ms = 0;
  double fct_max_ms = 0;
  /// Reordering guard: the worst per-flow inter-arrival gap seen by any
  /// sink. Flowlet switching must keep this bounded — a reroute inside an
  /// open flowlet would show up here (and in out_of_order) first.
  double max_gap_ms = 0;
  /// Fabric-wide WCMP telemetry, summed from the link direction counters by
  /// harness::run_workload. Router-local and sim-time driven, so they ride
  /// the same any-shard-count determinism contract as everything above.
  std::uint64_t flowlet_reroutes = 0;
  std::uint64_t wcmp_weight_updates = 0;

  bool operator==(const FlowStats&) const = default;
};

/// Nearest-rank quantile of a sorted sample (q in [0,1]); 0 when empty.
[[nodiscard]] double quantile_sorted(const std::vector<double>& sorted,
                                     double q);

class WorkloadEngine {
 public:
  /// `hosts` are the fabric's servers in deployment order; flows reference
  /// them by index. Throws std::invalid_argument for fewer than two hosts
  /// or a spec without edge bandwidth.
  WorkloadEngine(std::vector<Host*> hosts, WorkloadSpec spec,
                 std::uint64_t seed);

  /// Draws the flow schedule for [start, start + window). Idempotent-free:
  /// call once. Exposed separately from launch() so tests can check
  /// arrival-process statistics without running a simulation.
  void build_schedule(sim::Time start, sim::Duration window);

  /// build_schedule() if not yet built, then arms every sink listener and
  /// schedules each flow's start on its sender's own scheduler (shard-safe).
  void launch(sim::Time start, sim::Duration window);

  [[nodiscard]] const std::vector<ScheduledFlow>& schedule() const {
    return schedule_;
  }
  [[nodiscard]] const WorkloadSpec& spec() const { return spec_; }

  /// Joins the schedule with the sinks' flow records; `end` is the
  /// observation horizon used to censor incomplete flows.
  [[nodiscard]] FlowStats collect(sim::Time end) const;

 private:
  std::vector<Host*> hosts_;
  WorkloadSpec spec_;
  std::uint64_t seed_;
  std::vector<ScheduledFlow> schedule_;
  std::vector<std::uint64_t> sent_baseline_;
  bool launched_ = false;
};

}  // namespace mrmtp::traffic
