#include "topo/chaos.hpp"

#include <algorithm>
#include <stdexcept>

#include "net/switch_buffer.hpp"
#include "traffic/host.hpp"

namespace mrmtp::topo {

namespace {
/// The context owning direction `dir`'s sender state. Impairments are read
/// by the sending side's transmitter, so chaos must mutate them on that
/// node's shard — never on the engine's setup context.
net::SimContext& sender_ctx(net::Link& link, net::Link::Dir dir) {
  net::Port& from = dir == net::Link::Dir::kAToB ? link.a() : link.b();
  return from.owner().ctx();
}
}  // namespace

std::string_view to_string(GrayKind kind) {
  switch (kind) {
    case GrayKind::kUnidirBlackhole: return "unidir-blackhole";
    case GrayKind::kUnidirLoss: return "unidir-loss";
    case GrayKind::kDegradationRamp: return "degradation-ramp";
    case GrayKind::kFlapStorm: return "flap-storm";
    case GrayKind::kCorrelatedBlackhole: return "correlated-blackhole";
    case GrayKind::kCongestionStorm: return "congestion-storm";
    case GrayKind::kBufferSqueeze: return "buffer-squeeze";
    case GrayKind::kMaintenance: return "maintenance";
    case GrayKind::kExpansion: return "expansion";
    case GrayKind::kMisconfig: return "misconfig";
  }
  return "?";
}

std::string_view to_string(ChaosPhase phase) {
  switch (phase) {
    case ChaosPhase::kOnset: return "onset";
    case ChaosPhase::kHeal: return "heal";
    case ChaosPhase::kRampComplete: return "ramp-complete";
  }
  return "?";
}

ChaosEngine::ChaosEngine(net::Network& network, const ClosBlueprint& blueprint,
                         std::uint64_t seed)
    : network_(network), blueprint_(blueprint), rng_(seed) {}

net::Link& ChaosEngine::link_of(const FailurePoint& fp) const {
  net::Link* link = network_.find(fp.device).port(fp.port).link();
  if (link == nullptr) {
    throw std::logic_error("ChaosEngine: " + fp.device + ":" +
                           std::to_string(fp.port) + " is unwired");
  }
  return *link;
}

net::Link::Dir ChaosEngine::dir_of(const FailurePoint& fp,
                                   bool toward_device) const {
  net::Link& link = link_of(fp);
  net::Port& own = network_.find(fp.device).port(fp.port);
  // direction_from(own) is the direction fp.device transmits in; frames
  // toward the device travel the reverse one.
  net::Link::Dir outbound = link.direction_from(own);
  return toward_device ? net::Link::reverse(outbound) : outbound;
}

void ChaosEngine::record(sim::Time at, GrayKind kind, ChaosPhase phase,
                         std::string description) {
  log_.push_back(ChaosEventRecord{at, kind, phase, std::move(description)});
  std::sort(log_.begin(), log_.end(),
            [](const ChaosEventRecord& a, const ChaosEventRecord& b) {
              return a.at < b.at;
            });
}

std::optional<sim::Time> ChaosEngine::first_onset() const {
  // Heal / ramp-complete records never precede their onset, but guard
  // against a bare heal() call being the only thing logged.
  for (const ChaosEventRecord& r : log_) {
    if (r.phase == ChaosPhase::kOnset) return r.at;
  }
  return std::nullopt;
}

void ChaosEngine::blackhole_one_way(const FailurePoint& fp, bool toward_device,
                                    sim::Time at) {
  net::Link& link = link_of(fp);
  net::Link::Dir dir = dir_of(fp, toward_device);
  record(at, GrayKind::kUnidirBlackhole, ChaosPhase::kOnset,
         fp.device + ":" + std::to_string(fp.port) + " <-> " + fp.peer +
             (toward_device ? " blackhole toward " : " blackhole away from ") +
             fp.device);
  sender_ctx(link, dir).sched.schedule_at(
      at, [&link, dir] { link.set_blackhole(dir, true); });
}

void ChaosEngine::loss_one_way(const FailurePoint& fp, bool toward_device,
                               double p, sim::Time at) {
  net::Link& link = link_of(fp);
  net::Link::Dir dir = dir_of(fp, toward_device);
  record(at, GrayKind::kUnidirLoss, ChaosPhase::kOnset,
         fp.device + ":" + std::to_string(fp.port) + " <-> " + fp.peer +
             " one-way loss " + std::to_string(p) +
             (toward_device ? " toward " : " away from ") + fp.device);
  sender_ctx(link, dir).sched.schedule_at(
      at, [&link, dir, p] { link.set_loss(dir, p); });
}

void ChaosEngine::degradation_ramp(const FailurePoint& fp, bool toward_device,
                                   double target, sim::Time at,
                                   sim::Duration over) {
  net::Link& link = link_of(fp);
  net::Link::Dir dir = dir_of(fp, toward_device);
  record(at, GrayKind::kDegradationRamp, ChaosPhase::kOnset,
         fp.device + ":" + std::to_string(fp.port) + " <-> " + fp.peer +
             " loss ramp to " + std::to_string(target) + " over " + over.str());
  record(at + over, GrayKind::kDegradationRamp, ChaosPhase::kRampComplete,
         fp.device + ":" + std::to_string(fp.port) + " <-> " + fp.peer +
             " ramp reached " + std::to_string(target));
  sender_ctx(link, dir).sched.schedule_at(
      at, [&link, dir, target, over] { link.ramp_loss(dir, target, over); });
}

void ChaosEngine::flap_storm(const FailurePoint& fp, sim::Time at, int flaps,
                             sim::Duration period) {
  record(at, GrayKind::kFlapStorm, ChaosPhase::kOnset,
         fp.device + ":" + std::to_string(fp.port) + " flap storm x" +
             std::to_string(flaps) + " every " + period.str());
  record(at + period * flaps, GrayKind::kFlapStorm, ChaosPhase::kHeal,
         fp.device + ":" + std::to_string(fp.port) + " flap storm complete");
  FailurePoint copy = fp;  // by value: records are independent of callers
  // Admin flaps mutate the device's own port state: its shard runs them.
  net::SimContext& ctx = network_.find(fp.device).ctx();
  for (int f = 0; f < flaps; ++f) {
    sim::Time down_at = at + period * f;
    sim::Time up_at = down_at + period / 2;
    ctx.sched.schedule_at(down_at, [this, copy] {
      network_.find(copy.device).set_interface_down(copy.port);
    });
    ctx.sched.schedule_at(up_at, [this, copy] {
      network_.find(copy.device).set_interface_up(copy.port);
    });
  }
}

void ChaosEngine::correlated_blackhole(const std::string& device, int links,
                                       sim::Time at) {
  std::uint32_t d = blueprint_.device_index(device);
  std::vector<std::uint32_t> indices;
  for (std::uint32_t li = 0; li < blueprint_.links().size(); ++li) {
    const auto& ls = blueprint_.links()[li];
    if (ls.upper == d || ls.lower == d) indices.push_back(li);
  }
  // Seeded partial shuffle, then fail the first `links` of them together.
  for (std::size_t i = 0; i + 1 < indices.size(); ++i) {
    std::size_t j = i + rng_.below(indices.size() - i);
    std::swap(indices[i], indices[j]);
  }
  int n = std::min<int>(links, static_cast<int>(indices.size()));
  for (int i = 0; i < n; ++i) {
    const auto& ls = blueprint_.links()[indices[static_cast<std::size_t>(i)]];
    std::uint32_t peer = ls.upper == d ? ls.lower : ls.upper;
    FailurePoint fp{device,
                    blueprint_.port_on(d, indices[static_cast<std::size_t>(i)]),
                    blueprint_.device(peer).name};
    net::Link& link = link_of(fp);
    net::Link::Dir dir = dir_of(fp, /*toward_device=*/true);
    sender_ctx(link, dir).sched.schedule_at(
        at, [&link, dir] { link.set_blackhole(dir, true); });
  }
  record(at, GrayKind::kCorrelatedBlackhole, ChaosPhase::kOnset,
         device + " loses " + std::to_string(n) + " links together");
}

void ChaosEngine::heal(const FailurePoint& fp, sim::Time at, GrayKind healed) {
  net::Link& link = link_of(fp);
  record(at, healed, ChaosPhase::kHeal,
         fp.device + ":" + std::to_string(fp.port) + " <-> " + fp.peer +
             " healed");
  net::SimContext& actx = sender_ctx(link, net::Link::Dir::kAToB);
  net::SimContext& bctx = sender_ctx(link, net::Link::Dir::kBToA);
  if (&actx == &bctx) {
    actx.sched.schedule_at(at, [&link] { link.clear_impairments(); });
  } else {
    // Endpoints on different shards: each direction heals on its sender.
    actx.sched.schedule_at(
        at, [&link] { link.clear_impairments(net::Link::Dir::kAToB); });
    bctx.sched.schedule_at(
        at, [&link] { link.clear_impairments(net::Link::Dir::kBToA); });
  }
}

FailurePoint ChaosEngine::random_fabric_point() {
  std::uint32_t li =
      static_cast<std::uint32_t>(rng_.below(blueprint_.links().size()));
  const auto& ls = blueprint_.links()[li];
  return FailurePoint{blueprint_.device(ls.lower).name,
                      blueprint_.port_on(ls.lower, li),
                      blueprint_.device(ls.upper).name};
}

std::string ChaosEngine::congestion_storm(const StormSpec& spec, sim::Time at) {
  const auto& hosts = blueprint_.hosts();
  if (hosts.size() < 2) return {};

  // Seeded victim; senders drawn from other racks so every flow crosses the
  // fabric and converges on the victim's leaf.
  std::size_t vi = rng_.below(hosts.size());
  const HostSpec& victim = hosts[vi];
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    if (hosts[i].leaf != victim.leaf) candidates.push_back(i);
  }
  if (candidates.empty()) return {};
  for (std::size_t i = 0; i + 1 < candidates.size(); ++i) {
    std::size_t j = i + rng_.below(candidates.size() - i);
    std::swap(candidates[i], candidates[j]);
  }
  int n = std::min<int>(spec.senders, static_cast<int>(candidates.size()));

  record(at, GrayKind::kCongestionStorm, ChaosPhase::kOnset,
         victim.name + " incast from " + std::to_string(n) + " hosts for " +
             spec.duration.str());
  record(at + spec.duration, GrayKind::kCongestionStorm, ChaosPhase::kHeal,
         victim.name + " incast complete");

  auto* sink = dynamic_cast<traffic::Host*>(&network_.find(victim.name));
  if (sink == nullptr) {
    throw std::logic_error("ChaosEngine: " + victim.name +
                           " is not a traffic::Host");
  }
  sink->ctx().sched.schedule_at(at, [sink] { sink->listen(); });
  for (int i = 0; i < n; ++i) {
    const HostSpec& spec_src = hosts[candidates[static_cast<std::size_t>(i)]];
    auto* src = dynamic_cast<traffic::Host*>(&network_.find(spec_src.name));
    if (src == nullptr) continue;
    traffic::FlowConfig flow;
    flow.dst = victim.addr;
    flow.gap = spec.gap;
    flow.payload_size = spec.payload_size;
    src->ctx().sched.schedule_at(at, [src, flow] { src->start_flow(flow); });
    src->ctx().sched.schedule_at(at + spec.duration, [src] { src->stop_flow(); });
  }
  return victim.name;
}

std::string ChaosEngine::buffer_squeeze(const std::string& device, double frac,
                                        sim::Time at,
                                        sim::Duration heal_after) {
  net::Node& node = network_.find(device);
  net::SwitchBuffer* sb = node.switch_buffer();
  if (sb == nullptr) return {};
  record(at, GrayKind::kBufferSqueeze, ChaosPhase::kOnset,
         device + " pool squeezed to " + std::to_string(frac));
  // Pool mutations execute on the owning node's shard, like impairments.
  node.ctx().sched.schedule_at(at, [sb, frac] { sb->squeeze(frac); });
  if (heal_after > sim::Duration{}) {
    record(at + heal_after, GrayKind::kBufferSqueeze, ChaosPhase::kHeal,
           device + " pool restored");
    node.ctx().sched.schedule_at(at + heal_after, [sb] { sb->restore(); });
  }
  return device;
}

void ChaosEngine::run_campaign(const CampaignSpec& spec) {
  const double total = spec.w_blackhole + spec.w_loss + spec.w_ramp +
                       spec.w_flap + spec.w_correlated + spec.w_congestion +
                       spec.w_squeeze;
  for (int e = 0; e < spec.events; ++e) {
    sim::Time at = spec.start + spec.spacing * e;
    FailurePoint fp = random_fabric_point();
    bool toward = rng_.chance(0.5);
    double pick = rng_.uniform() * total;
    GrayKind healed = GrayKind::kUnidirBlackhole;

    if ((pick -= spec.w_blackhole) < 0) {
      blackhole_one_way(fp, toward, at);
    } else if ((pick -= spec.w_loss) < 0) {
      double p = spec.loss_min +
                 rng_.uniform() * (spec.loss_max - spec.loss_min);
      loss_one_way(fp, toward, p, at);
      healed = GrayKind::kUnidirLoss;
    } else if ((pick -= spec.w_ramp) < 0) {
      degradation_ramp(fp, toward, 1.0, at, spec.ramp_over);
      healed = GrayKind::kDegradationRamp;
    } else if ((pick -= spec.w_flap) < 0) {
      flap_storm(fp, at, spec.flaps, spec.flap_period);
      continue;  // flaps are admin events; nothing to heal on the link
    } else if ((pick -= spec.w_correlated) < 0) {
      correlated_blackhole(fp.device, spec.correlated_links, at);
      if (spec.heal_after > sim::Duration{}) {
        // Heal every link of the device; cheaper than tracking the subset.
        std::uint32_t d = blueprint_.device_index(fp.device);
        for (std::uint32_t li = 0; li < blueprint_.links().size(); ++li) {
          const auto& ls = blueprint_.links()[li];
          if (ls.upper != d && ls.lower != d) continue;
          std::uint32_t peer = ls.upper == d ? ls.lower : ls.upper;
          heal(FailurePoint{fp.device, blueprint_.port_on(d, li),
                            blueprint_.device(peer).name},
               at + spec.heal_after, GrayKind::kCorrelatedBlackhole);
        }
      }
      continue;
    } else if ((pick -= spec.w_congestion) < 0 || spec.w_squeeze <= 0) {
      StormSpec storm;
      storm.senders = spec.storm_senders;
      storm.gap = spec.storm_gap;
      storm.payload_size = spec.storm_payload;
      storm.duration = spec.heal_after > sim::Duration{}
                           ? spec.heal_after
                           : sim::Duration::millis(500);
      congestion_storm(storm, at);
      continue;  // the storm stops itself; no link impairment to heal
    } else {
      // Squeeze the random link's lower device; a bufferless fabric makes
      // this a skipped draw (the RNG sequence is unchanged either way).
      buffer_squeeze(fp.device, spec.squeeze_frac, at, spec.heal_after);
      continue;  // restore is scheduled by the squeeze itself
    }
    if (spec.heal_after > sim::Duration{}) {
      heal(fp, at + spec.heal_after, healed);
    }
  }
}

}  // namespace mrmtp::topo
