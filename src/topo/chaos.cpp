#include "topo/chaos.hpp"

#include <algorithm>
#include <stdexcept>

namespace mrmtp::topo {

std::string_view to_string(GrayKind kind) {
  switch (kind) {
    case GrayKind::kUnidirBlackhole: return "unidir-blackhole";
    case GrayKind::kUnidirLoss: return "unidir-loss";
    case GrayKind::kDegradationRamp: return "degradation-ramp";
    case GrayKind::kFlapStorm: return "flap-storm";
    case GrayKind::kCorrelatedBlackhole: return "correlated-blackhole";
  }
  return "?";
}

ChaosEngine::ChaosEngine(net::Network& network, const ClosBlueprint& blueprint,
                         std::uint64_t seed)
    : network_(network), blueprint_(blueprint), rng_(seed) {}

net::Link& ChaosEngine::link_of(const FailurePoint& fp) const {
  net::Link* link = network_.find(fp.device).port(fp.port).link();
  if (link == nullptr) {
    throw std::logic_error("ChaosEngine: " + fp.device + ":" +
                           std::to_string(fp.port) + " is unwired");
  }
  return *link;
}

net::Link::Dir ChaosEngine::dir_of(const FailurePoint& fp,
                                   bool toward_device) const {
  net::Link& link = link_of(fp);
  net::Port& own = network_.find(fp.device).port(fp.port);
  // direction_from(own) is the direction fp.device transmits in; frames
  // toward the device travel the reverse one.
  net::Link::Dir outbound = link.direction_from(own);
  return toward_device ? net::Link::reverse(outbound) : outbound;
}

void ChaosEngine::record(sim::Time at, GrayKind kind, std::string description) {
  log_.push_back(ChaosEventRecord{at, kind, std::move(description)});
  std::sort(log_.begin(), log_.end(),
            [](const ChaosEventRecord& a, const ChaosEventRecord& b) {
              return a.at < b.at;
            });
}

std::optional<sim::Time> ChaosEngine::first_onset() const {
  if (log_.empty()) return std::nullopt;
  return log_.front().at;
}

void ChaosEngine::blackhole_one_way(const FailurePoint& fp, bool toward_device,
                                    sim::Time at) {
  net::Link& link = link_of(fp);
  net::Link::Dir dir = dir_of(fp, toward_device);
  record(at, GrayKind::kUnidirBlackhole,
         fp.device + ":" + std::to_string(fp.port) + " <-> " + fp.peer +
             (toward_device ? " blackhole toward " : " blackhole away from ") +
             fp.device);
  network_.ctx().sched.schedule_at(
      at, [&link, dir] { link.set_blackhole(dir, true); });
}

void ChaosEngine::loss_one_way(const FailurePoint& fp, bool toward_device,
                               double p, sim::Time at) {
  net::Link& link = link_of(fp);
  net::Link::Dir dir = dir_of(fp, toward_device);
  record(at, GrayKind::kUnidirLoss,
         fp.device + ":" + std::to_string(fp.port) + " <-> " + fp.peer +
             " one-way loss " + std::to_string(p) +
             (toward_device ? " toward " : " away from ") + fp.device);
  network_.ctx().sched.schedule_at(at,
                                   [&link, dir, p] { link.set_loss(dir, p); });
}

void ChaosEngine::degradation_ramp(const FailurePoint& fp, bool toward_device,
                                   double target, sim::Time at,
                                   sim::Duration over) {
  net::Link& link = link_of(fp);
  net::Link::Dir dir = dir_of(fp, toward_device);
  record(at, GrayKind::kDegradationRamp,
         fp.device + ":" + std::to_string(fp.port) + " <-> " + fp.peer +
             " loss ramp to " + std::to_string(target) + " over " + over.str());
  network_.ctx().sched.schedule_at(
      at, [&link, dir, target, over] { link.ramp_loss(dir, target, over); });
}

void ChaosEngine::flap_storm(const FailurePoint& fp, sim::Time at, int flaps,
                             sim::Duration period) {
  record(at, GrayKind::kFlapStorm,
         fp.device + ":" + std::to_string(fp.port) + " flap storm x" +
             std::to_string(flaps) + " every " + period.str());
  FailurePoint copy = fp;  // by value: records are independent of callers
  for (int f = 0; f < flaps; ++f) {
    sim::Time down_at = at + period * f;
    sim::Time up_at = down_at + period / 2;
    network_.ctx().sched.schedule_at(down_at, [this, copy] {
      network_.find(copy.device).set_interface_down(copy.port);
    });
    network_.ctx().sched.schedule_at(up_at, [this, copy] {
      network_.find(copy.device).set_interface_up(copy.port);
    });
  }
}

void ChaosEngine::correlated_blackhole(const std::string& device, int links,
                                       sim::Time at) {
  std::uint32_t d = blueprint_.device_index(device);
  std::vector<std::uint32_t> indices;
  for (std::uint32_t li = 0; li < blueprint_.links().size(); ++li) {
    const auto& ls = blueprint_.links()[li];
    if (ls.upper == d || ls.lower == d) indices.push_back(li);
  }
  // Seeded partial shuffle, then fail the first `links` of them together.
  for (std::size_t i = 0; i + 1 < indices.size(); ++i) {
    std::size_t j = i + rng_.below(indices.size() - i);
    std::swap(indices[i], indices[j]);
  }
  int n = std::min<int>(links, static_cast<int>(indices.size()));
  for (int i = 0; i < n; ++i) {
    const auto& ls = blueprint_.links()[indices[static_cast<std::size_t>(i)]];
    std::uint32_t peer = ls.upper == d ? ls.lower : ls.upper;
    FailurePoint fp{device,
                    blueprint_.port_on(d, indices[static_cast<std::size_t>(i)]),
                    blueprint_.device(peer).name};
    net::Link& link = link_of(fp);
    net::Link::Dir dir = dir_of(fp, /*toward_device=*/true);
    network_.ctx().sched.schedule_at(
        at, [&link, dir] { link.set_blackhole(dir, true); });
  }
  record(at, GrayKind::kCorrelatedBlackhole,
         device + " loses " + std::to_string(n) + " links together");
}

void ChaosEngine::heal(const FailurePoint& fp, sim::Time at) {
  net::Link& link = link_of(fp);
  network_.ctx().sched.schedule_at(at, [&link] { link.clear_impairments(); });
}

FailurePoint ChaosEngine::random_fabric_point() {
  std::uint32_t li =
      static_cast<std::uint32_t>(rng_.below(blueprint_.links().size()));
  const auto& ls = blueprint_.links()[li];
  return FailurePoint{blueprint_.device(ls.lower).name,
                      blueprint_.port_on(ls.lower, li),
                      blueprint_.device(ls.upper).name};
}

void ChaosEngine::run_campaign(const CampaignSpec& spec) {
  const double total = spec.w_blackhole + spec.w_loss + spec.w_ramp +
                       spec.w_flap + spec.w_correlated;
  for (int e = 0; e < spec.events; ++e) {
    sim::Time at = spec.start + spec.spacing * e;
    FailurePoint fp = random_fabric_point();
    bool toward = rng_.chance(0.5);
    double pick = rng_.uniform() * total;

    if ((pick -= spec.w_blackhole) < 0) {
      blackhole_one_way(fp, toward, at);
    } else if ((pick -= spec.w_loss) < 0) {
      double p = spec.loss_min +
                 rng_.uniform() * (spec.loss_max - spec.loss_min);
      loss_one_way(fp, toward, p, at);
    } else if ((pick -= spec.w_ramp) < 0) {
      degradation_ramp(fp, toward, 1.0, at, spec.ramp_over);
    } else if ((pick -= spec.w_flap) < 0) {
      flap_storm(fp, at, spec.flaps, spec.flap_period);
      continue;  // flaps are admin events; nothing to heal on the link
    } else {
      correlated_blackhole(fp.device, spec.correlated_links, at);
      if (spec.heal_after > sim::Duration{}) {
        // Heal every link of the device; cheaper than tracking the subset.
        std::uint32_t d = blueprint_.device_index(fp.device);
        for (std::uint32_t li = 0; li < blueprint_.links().size(); ++li) {
          const auto& ls = blueprint_.links()[li];
          if (ls.upper != d && ls.lower != d) continue;
          std::uint32_t peer = ls.upper == d ? ls.lower : ls.upper;
          heal(FailurePoint{fp.device, blueprint_.port_on(d, li),
                            blueprint_.device(peer).name},
               at + spec.heal_after);
        }
      }
      continue;
    }
    if (spec.heal_after > sim::Duration{}) heal(fp, at + spec.heal_after);
  }
}

}  // namespace mrmtp::topo
