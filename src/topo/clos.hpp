// Folded-Clos topology blueprint.
//
// A ClosBlueprint is pure data: device descriptors, link descriptors (in
// wiring order), addressing, ASN and VID plans. Protocol-specific factories
// (mtp::build_network, bgp::build_network) instantiate nodes from it, so the
// same topology runs MR-MTP or BGP/ECMP(/BFD) — the paper's experimental
// setup of identical slices per protocol.
//
// Wiring order is semantic, not cosmetic: a node's port numbers are assigned
// in link-creation order, and MR-MTP derives VIDs by appending the arrival
// port number (paper Fig. 2: ToR 11's port 1 -> S1_1 gets 11.1; S1_1's port 1
// -> S2_1 gets 11.1.1). Links are therefore created tier-down: pod-spine
// uplinks first, then ToR uplinks, then host links, giving every device its
// upstream ports at the lowest numbers exactly as in the paper's figures.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ip/addr.hpp"
#include "util/json.hpp"

namespace mrmtp::topo {

struct ClosParams {
  std::uint32_t pods = 2;
  std::uint32_t tors_per_pod = 2;
  std::uint32_t spines_per_pod = 2;
  std::uint32_t top_spines = 4;
  std::uint32_t hosts_per_tor = 1;

  // --- optional fourth tier (paper §III.B "the scheme can easily scale to
  // any number of spine tiers"; §IX future work). When clusters > 1 the
  // 3-tier structure above repeats per cluster, and `super_spines` tier-4
  // devices mesh the clusters; super spine q wires to top spine t of every
  // cluster when (q-1) % top_spines == t-1. ---
  std::uint32_t clusters = 1;
  std::uint32_t super_spines = 0;

  /// Uplinks per pod spine; top_spines must be divisible by spines_per_pod.
  [[nodiscard]] std::uint32_t uplinks_per_spine() const {
    return top_spines / spines_per_pod;
  }
  /// Uplinks per top spine (4-tier fabrics only).
  [[nodiscard]] std::uint32_t uplinks_per_top() const {
    return top_spines == 0 ? 0 : super_spines / top_spines;
  }
  [[nodiscard]] bool four_tier() const { return super_spines > 0; }

  // --- asymmetric mode (heterogeneous fat-trees per Solnushkin; FatPaths-
  // style asymmetry). Real fabrics grow unevenly: PoDs differ in rack count
  // and uplink speed, and expansions leave cabling mistakes behind. ---
  /// Per-global-PoD ToR counts, cluster-major PoD order. Empty = uniform
  /// `tors_per_pod` everywhere. Only rack counts vary; `spines_per_pod`
  /// stays uniform because the top-spine stripe wiring rule constrains it.
  std::vector<std::uint32_t> pod_tors = {};
  /// Per-global-PoD relative bandwidth of the PoD's ToR uplinks (1.0 = the
  /// deployment's base link rate; < 1 oversubscribes the PoD). Empty =
  /// uniform. Latency is untouched, so the parallel engine's link-delay
  /// lookahead is unaffected by mixed speeds.
  std::vector<double> pod_uplink_rate = {};
  /// Per-stripe relative bandwidth of uplinks: a device's k-th uplink (ToR
  /// -> spine s, pod spine -> its k-th top spine) runs at
  /// stripe_rate[k % size]. Empty = uniform. {1.0, 0.5} models a 2:1
  /// oversubscribed tier where every second stripe was cabled at half rate —
  /// unlike pod_uplink_rate (uniform within a PoD), this puts *mixed* speeds
  /// inside every ECMP/VID candidate set, the case WCMP exists for.
  std::vector<double> stripe_rate = {};
  /// Build-time cabling errors: this many seeded swaps of the top-spine
  /// endpoints of two uplinks from *different* spines of the *same* PoD.
  /// Reachability is preserved (both cables stay inside the PoD) but the
  /// stripe rule is violated; ClosBlueprint::miswired_links() finds them.
  std::uint32_t miswires = 0;
  std::uint64_t miswire_seed = 1;

  [[nodiscard]] bool asymmetric() const { return !pod_tors.empty(); }
  /// ToR count of 0-based global PoD `g` ((cluster-1)*pods + pod-1).
  [[nodiscard]] std::uint32_t tors_in_global_pod(std::uint32_t g) const {
    return g < pod_tors.size() ? pod_tors[g] : tors_per_pod;
  }
  [[nodiscard]] std::uint32_t total_tors() const {
    std::uint32_t n = 0;
    for (std::uint32_t g = 0; g < clusters * pods; ++g) n += tors_in_global_pod(g);
    return n;
  }
  [[nodiscard]] double uplink_rate_of(std::uint32_t g) const {
    return g < pod_uplink_rate.size() ? pod_uplink_rate[g] : 1.0;
  }
  /// Rate multiplier of a device's 0-based `ordinal`-th uplink stripe.
  [[nodiscard]] double stripe_rate_of(std::uint32_t ordinal) const {
    return stripe_rate.empty() ? 1.0
                               : stripe_rate[ordinal % stripe_rate.size()];
  }

  /// The paper's 2-PoD topology (Figs 2/3): 4 ToRs, 4 pod spines, 4 tops.
  static ClosParams paper_2pod() { return ClosParams{2, 2, 2, 4, 1}; }
  /// The paper's 4-PoD topology: 8 ToRs, 8 pod spines, 4 tops.
  static ClosParams paper_4pod() { return ClosParams{4, 2, 2, 4, 1}; }
  /// An 8-PoD fabric with non-uniform rack counts and oversubscribed PoDs:
  /// the lifecycle bench's asymmetric topology.
  static ClosParams asymmetric_8pod() {
    ClosParams p{8, 2, 2, 4, 1};
    p.pod_tors = {2, 3, 1, 2, 3, 1, 2, 2};
    p.pod_uplink_rate = {1.0, 0.5, 1.0, 0.25, 1.0, 0.5, 1.0, 1.0};
    return p;
  }
  /// The WCMP A/B topology: non-uniform rack counts plus a 2:1
  /// oversubscribed uplink tier — every device's FIRST uplink stripe runs at
  /// half rate, so every ECMP/VID candidate set mixes speeds (and the TC1
  /// failure lands on a half-rate uplink). pod_uplink_rate is deliberately
  /// left uniform: it scales a whole PoD's candidate set together, which
  /// weighted per-member selection cannot act on — it would only add
  /// capacity noise to the A/B.
  static ClosParams asymmetric_8pod_oversub() {
    ClosParams p{8, 2, 2, 4, 1};
    p.pod_tors = {2, 3, 1, 2, 3, 1, 2, 2};
    p.stripe_rate = {0.5, 1.0};
    return p;
  }
  /// A 4-tier fabric: `clusters` copies of the 4-PoD design joined by
  /// `supers` super spines.
  static ClosParams four_tier_clusters(std::uint32_t clusters,
                                       std::uint32_t supers) {
    ClosParams p = paper_4pod();
    p.clusters = clusters;
    p.super_spines = supers;
    return p;
  }

  [[nodiscard]] std::uint32_t router_count() const {
    return total_tors() + clusters * (pods * spines_per_pod + top_spines) +
           super_spines;
  }
};

enum class Role : std::uint8_t { kHost, kLeaf, kPodSpine, kTopSpine, kSuperSpine };

struct DeviceSpec {
  std::string name;    // "L-1-1", "S-1-2", "T-3" ("C2-L-1-1" in 4-tier, "U-1")
  Role role;
  std::uint32_t tier;     // 1 = leaf, 2 = pod spine, 3 = top, 4 = super
  std::uint32_t cluster;  // 1-based; 0 for super spines
  std::uint32_t pod;      // 1-based; 0 for top/super spines
  std::uint32_t index;    // 1-based within (cluster, pod, role)
  std::uint32_t asn;   // BGP AS number (RFC 7938-style plan)
  /// Leaves only: the server subnet whose third octet is the MR-MTP VID.
  std::optional<ip::Ipv4Prefix> server_subnet;
  std::uint16_t vid = 0;  // leaves only
};

struct LinkSpec {
  std::uint32_t upper;  // device index (higher tier end)
  std::uint32_t lower;  // device index (lower tier end)
  /// /31 point-to-point addresses for the BGP deployment.
  ip::Ipv4Addr upper_addr;
  ip::Ipv4Addr lower_addr;
  /// Relative bandwidth (1.0 = deployment base rate); the asymmetric
  /// generator's mixed-speed / oversubscription knob.
  double rate = 1.0;
};

struct HostSpec {
  std::string name;       // "H-1-1" (pod-tor; single server per rack in paper)
  std::uint32_t leaf;     // device index of the ToR
  ip::Ipv4Addr addr;      // e.g. 192.168.11.1
  ip::Ipv4Addr gateway;   // the ToR's address in the rack subnet
};

/// TC1..TC4: the paper's four interface-failure points (Fig. 3).
enum class TestCase : std::uint8_t { kTC1, kTC2, kTC3, kTC4 };

[[nodiscard]] std::string_view to_string(TestCase tc);
inline constexpr TestCase kAllTestCases[] = {TestCase::kTC1, TestCase::kTC2,
                                             TestCase::kTC3, TestCase::kTC4};

/// The interface to fail: bring down `port` on `device` (one-sided).
struct FailurePoint {
  std::string device;
  std::uint32_t port;
  std::string peer;  // informational: the device on the other end
};

class ClosBlueprint;

/// Device-to-shard assignment for the parallel fabric engine. PoD-affine:
/// every leaf and pod spine of a PoD (plus its hosts, which follow their
/// ToR) lands on one shard, so rack-local traffic never crosses threads;
/// top and super spines — whose links all cross PoDs anyway — round-robin
/// across shards to balance the interconnect load.
struct ShardPlan {
  std::uint32_t shards = 1;
  /// Shard of each blueprint device, indexed like ClosBlueprint::devices().
  std::vector<std::uint32_t> device_shard;

  [[nodiscard]] std::uint32_t shard_of(std::uint32_t device) const {
    return device_shard[device];
  }
};

/// Builds the PoD-affine plan; `shards` is clamped to [1, pod count] so no
/// shard is left without a PoD (an idle shard only adds barrier latency).
/// PoDs are placed on the currently lightest shard by router+host weight —
/// for uniform fabrics this reduces to round-robin (global_pod % shards),
/// for asymmetric fabrics it balances shard load by actual device count.
[[nodiscard]] ShardPlan make_shard_plan(const ClosBlueprint& blueprint,
                                        std::uint32_t shards);

class ClosBlueprint {
 public:
  explicit ClosBlueprint(ClosParams params);

  [[nodiscard]] const ClosParams& params() const { return params_; }
  [[nodiscard]] const std::vector<DeviceSpec>& devices() const { return devices_; }
  [[nodiscard]] const std::vector<LinkSpec>& links() const { return links_; }
  [[nodiscard]] const std::vector<HostSpec>& hosts() const { return hosts_; }

  [[nodiscard]] const DeviceSpec& device(std::uint32_t index) const {
    return devices_[index];
  }
  [[nodiscard]] std::uint32_t device_index(std::string_view name) const;

  /// Leaf device index for (pod, tor), both 1-based; 4-tier overloads take
  /// the cluster first.
  [[nodiscard]] std::uint32_t leaf(std::uint32_t pod, std::uint32_t tor) const;
  [[nodiscard]] std::uint32_t pod_spine(std::uint32_t pod, std::uint32_t s) const;
  [[nodiscard]] std::uint32_t top_spine(std::uint32_t t) const;
  [[nodiscard]] std::uint32_t leaf_in(std::uint32_t cluster, std::uint32_t pod,
                                      std::uint32_t tor) const;
  [[nodiscard]] std::uint32_t pod_spine_in(std::uint32_t cluster,
                                           std::uint32_t pod,
                                           std::uint32_t s) const;
  [[nodiscard]] std::uint32_t top_spine_in(std::uint32_t cluster,
                                           std::uint32_t t) const;
  [[nodiscard]] std::uint32_t super_spine(std::uint32_t q) const;

  /// The ToR VID for (pod, tor): sequential from 11 as in the paper.
  [[nodiscard]] std::uint16_t tor_vid(std::uint32_t pod, std::uint32_t tor) const;
  [[nodiscard]] std::uint16_t tor_vid_in(std::uint32_t cluster, std::uint32_t pod,
                                         std::uint32_t tor) const;

  /// ToR count of (cluster, pod) — per-PoD in asymmetric mode.
  [[nodiscard]] std::uint32_t tors_in(std::uint32_t cluster,
                                      std::uint32_t pod) const;

  /// Link indices whose cabling violates the stripe rule (top spine t must
  /// serve pod spine s iff (t-1) % spines_per_pod == s-1) — i.e. the cables
  /// crossed by ClosParams::miswires. Empty on a correctly built fabric.
  [[nodiscard]] std::vector<std::uint32_t> miswired_links() const;

  /// Maps a test case to the interface to fail. All four are anchored on the
  /// first traffic path (L-1-1 / S-1-1 / T-1), matching Fig. 3:
  ///   TC1: ToR-side interface of link L-1-1 <-> S-1-1
  ///   TC2: spine-side interface of the same link
  ///   TC3: pod-spine-side interface of link S-1-1 <-> T-1
  ///   TC4: top-side interface of the same link
  [[nodiscard]] FailurePoint failure_point(TestCase tc) const;

  /// Port number of `device`'s end of blueprint link `link_index`, derived
  /// from wiring order (identical to the instantiated Network's numbering).
  [[nodiscard]] std::uint32_t port_on(std::uint32_t device,
                                      std::uint32_t link_index) const;

  /// Port number of the leaf-side interface that faces the servers (used by
  /// the MR-MTP config's leavesNetworkPortDict).
  [[nodiscard]] std::uint32_t leaf_host_port(std::uint32_t leaf_index) const;

  /// The MR-MTP JSON configuration of paper Listing 2.
  [[nodiscard]] util::Json mtp_config() const;

 private:
  void build();

  ClosParams params_;
  /// leaf_base_[g] = leaves in global PoDs before g (prefix sums); the
  /// uniform closed-form indexing generalized to non-uniform PoD sizes.
  std::vector<std::uint32_t> leaf_base_;
  std::uint32_t total_tors_ = 0;
  std::vector<DeviceSpec> devices_;
  std::vector<LinkSpec> links_;
  std::vector<HostSpec> hosts_;
  /// port_order_[d] = list of link indices in creation order for device d
  /// (host links excluded; they follow after).
  std::vector<std::vector<std::uint32_t>> port_order_;
};

}  // namespace mrmtp::topo
