#include "topo/clos.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/random.hpp"

namespace mrmtp::topo {

std::string_view to_string(TestCase tc) {
  switch (tc) {
    case TestCase::kTC1: return "TC1";
    case TestCase::kTC2: return "TC2";
    case TestCase::kTC3: return "TC3";
    case TestCase::kTC4: return "TC4";
  }
  return "?";
}

ClosBlueprint::ClosBlueprint(ClosParams params) : params_(params) {
  if (params_.pods < 1 || params_.tors_per_pod < 1 ||
      params_.spines_per_pod < 1 || params_.top_spines < 1 ||
      params_.clusters < 1) {
    throw std::invalid_argument("ClosBlueprint: all tier sizes must be >= 1");
  }
  if (params_.top_spines % params_.spines_per_pod != 0) {
    throw std::invalid_argument(
        "ClosBlueprint: top_spines must be a multiple of spines_per_pod");
  }
  if (params_.clusters > 1 && params_.super_spines == 0) {
    throw std::invalid_argument(
        "ClosBlueprint: multiple clusters need super spines to mesh them");
  }
  if (params_.super_spines > 0 &&
      params_.super_spines % params_.top_spines != 0) {
    throw std::invalid_argument(
        "ClosBlueprint: super_spines must be a multiple of top_spines");
  }
  std::uint32_t global_pods = params_.clusters * params_.pods;
  if (!params_.pod_tors.empty() && params_.pod_tors.size() != global_pods) {
    throw std::invalid_argument(
        "ClosBlueprint: pod_tors must name every global PoD or be empty");
  }
  for (std::uint32_t t : params_.pod_tors) {
    if (t < 1) throw std::invalid_argument("ClosBlueprint: empty PoD");
  }
  if (!params_.pod_uplink_rate.empty() &&
      params_.pod_uplink_rate.size() != global_pods) {
    throw std::invalid_argument(
        "ClosBlueprint: pod_uplink_rate must name every global PoD or be empty");
  }
  for (double r : params_.pod_uplink_rate) {
    if (r <= 0.0) {
      throw std::invalid_argument("ClosBlueprint: uplink rate must be > 0");
    }
  }
  if (params_.miswires > 0 && params_.spines_per_pod < 2) {
    throw std::invalid_argument(
        "ClosBlueprint: miswiring swaps uplinks of two spines in one PoD");
  }
  leaf_base_.resize(global_pods, 0);
  for (std::uint32_t g = 0; g < global_pods; ++g) {
    leaf_base_[g] = total_tors_;
    total_tors_ += params_.tors_in_global_pod(g);
  }
  // VIDs are the third octet of the 192.168.V.0/24 rack subnet, so the VID
  // plan (sequential from 11) must fit a byte with room for the host field.
  if (11 + total_tors_ - 1 > 250) {
    throw std::invalid_argument("ClosBlueprint: VID plan overflows an octet");
  }
  build();
}

void ClosBlueprint::build() {
  const auto& p = params_;
  const bool multi = p.clusters > 1;
  auto cluster_prefix = [multi](std::uint32_t c) {
    return multi ? "C" + std::to_string(c) + "-" : std::string();
  };

  // --- Devices: leaves, pod spines, tops (cluster-major), then supers ---
  std::uint32_t leaf_counter = 0;
  for (std::uint32_t c = 1; c <= p.clusters; ++c) {
    for (std::uint32_t pod = 1; pod <= p.pods; ++pod) {
      for (std::uint32_t t = 1; t <= tors_in(c, pod); ++t) {
        ++leaf_counter;
        DeviceSpec d;
        d.name = cluster_prefix(c) + "L-" + std::to_string(pod) + "-" +
                 std::to_string(t);
        d.role = Role::kLeaf;
        d.tier = 1;
        d.cluster = c;
        d.pod = pod;
        d.index = t;
        d.asn = p.four_tier() ? 65000 + leaf_counter : 64600 + leaf_counter;
        d.vid = tor_vid_in(c, pod, t);
        d.server_subnet = ip::Ipv4Prefix(
            ip::Ipv4Addr(192, 168, static_cast<std::uint8_t>(d.vid), 0), 24);
        devices_.push_back(std::move(d));
      }
    }
  }
  for (std::uint32_t c = 1; c <= p.clusters; ++c) {
    for (std::uint32_t pod = 1; pod <= p.pods; ++pod) {
      for (std::uint32_t s = 1; s <= p.spines_per_pod; ++s) {
        DeviceSpec d;
        d.name = cluster_prefix(c) + "S-" + std::to_string(pod) + "-" +
                 std::to_string(s);
        d.role = Role::kPodSpine;
        d.tier = 2;
        d.cluster = c;
        d.pod = pod;
        d.index = s;
        // Per-pod spine ASN (Listing 1: 64513..); per (cluster, pod) in
        // 4-tier fabrics so paths never revisit an ASN.
        d.asn = p.four_tier() ? 64700 + (c - 1) * p.pods + pod : 64512 + pod;
        devices_.push_back(std::move(d));
      }
    }
  }
  for (std::uint32_t c = 1; c <= p.clusters; ++c) {
    for (std::uint32_t t = 1; t <= p.top_spines; ++t) {
      DeviceSpec d;
      d.name = cluster_prefix(c) + "T-" + std::to_string(t);
      d.role = Role::kTopSpine;
      d.tier = 3;
      d.cluster = c;
      d.pod = 0;
      d.index = t;
      // 3-tier: all tops share one ASN (Listing 1: router bgp 64512).
      // 4-tier: one ASN per cluster's top layer, so a path through the
      // supers into another cluster passes loop detection.
      d.asn = p.four_tier() ? 64550 + c : 64512;
      devices_.push_back(std::move(d));
    }
  }
  for (std::uint32_t q = 1; q <= p.super_spines; ++q) {
    DeviceSpec d;
    d.name = "U-" + std::to_string(q);
    d.role = Role::kSuperSpine;
    d.tier = 4;
    d.cluster = 0;
    d.pod = 0;
    d.index = q;
    d.asn = 64512;  // the shared backbone ASN moves up to the supers
    devices_.push_back(std::move(d));
  }

  port_order_.assign(devices_.size(), {});

  auto add_link = [this](std::uint32_t upper, std::uint32_t lower,
                         double rate = 1.0) {
    auto link_index = static_cast<std::uint32_t>(links_.size());
    LinkSpec l;
    l.upper = upper;
    l.lower = lower;
    // /31 per link out of 172.16.0.0/12 (paper Listing 1 uses 172.16.x.y).
    std::uint32_t base = ip::Ipv4Addr(172, 16, 0, 0).value() + 2 * link_index;
    l.upper_addr = ip::Ipv4Addr(base);
    l.lower_addr = ip::Ipv4Addr(base + 1);
    l.rate = rate;
    links_.push_back(l);
    port_order_[upper].push_back(link_index);
    port_order_[lower].push_back(link_index);
  };

  // --- Links, in the port-number-defining order (uplinks first at every
  // device so VIDs come out as in the paper's Fig. 2) ---
  // 0) Top-spine uplinks to the supers (4-tier only). Super spine q wires
  //    to top t of each cluster when (q-1) % top_spines == t-1.
  if (p.four_tier()) {
    for (std::uint32_t c = 1; c <= p.clusters; ++c) {
      for (std::uint32_t t = 1; t <= p.top_spines; ++t) {
        for (std::uint32_t q = 1; q <= p.super_spines; ++q) {
          if ((q - 1) % p.top_spines == t - 1) {
            add_link(super_spine(q), top_spine_in(c, t));
          }
        }
      }
    }
  }
  // 1) Pod-spine uplinks. Pod spine s wires to every top spine t with
  //    (t-1) % spines_per_pod == s-1 (Fig. 2 wiring: S1_1 -> {S2_1, S2_3}).
  //    The whole batch is staged first so seeded miswiring can swap the
  //    top-spine endpoints of two same-PoD, cross-spine uplinks before any
  //    port number is assigned — a cabling error baked in at build time.
  //    Keeping both swapped cables inside the PoD preserves reachability
  //    (every top spine still reaches the PoD), which is what makes this a
  //    *mis*configuration rather than a partition.
  {
    struct StagedUplink {
      std::uint32_t top, spine, cluster, pod, ordinal;
    };
    std::vector<StagedUplink> uplinks;
    for (std::uint32_t c = 1; c <= p.clusters; ++c) {
      for (std::uint32_t pod = 1; pod <= p.pods; ++pod) {
        for (std::uint32_t s = 1; s <= p.spines_per_pod; ++s) {
          std::uint32_t ordinal = 0;  // the spine's k-th uplink (stripe rate)
          for (std::uint32_t t = 1; t <= p.top_spines; ++t) {
            if ((t - 1) % p.spines_per_pod == s - 1) {
              uplinks.push_back({top_spine_in(c, t), pod_spine_in(c, pod, s),
                                 c, pod, ordinal++});
            }
          }
        }
      }
    }
    if (p.miswires > 0) {
      sim::Rng rng(p.miswire_seed);
      std::uint32_t crossed = 0;
      for (std::uint32_t attempt = 0;
           crossed < p.miswires && attempt < p.miswires * 256; ++attempt) {
        auto i = static_cast<std::size_t>(rng.below(uplinks.size()));
        auto j = static_cast<std::size_t>(rng.below(uplinks.size()));
        if (uplinks[i].cluster != uplinks[j].cluster ||
            uplinks[i].pod != uplinks[j].pod ||
            uplinks[i].spine == uplinks[j].spine ||
            uplinks[i].top == uplinks[j].top) {
          continue;
        }
        std::swap(uplinks[i].top, uplinks[j].top);
        ++crossed;
      }
    }
    for (const StagedUplink& u : uplinks) {
      add_link(u.top, u.spine, p.stripe_rate_of(u.ordinal));
    }
  }
  // 2) ToR uplinks: every leaf wires to every spine of its pod, spine order.
  //    Asymmetric mode scales these links' bandwidth per PoD; stripe_rate
  //    additionally scales the leaf's s-th uplink, putting mixed speeds
  //    inside a single ECMP group.
  for (std::uint32_t c = 1; c <= p.clusters; ++c) {
    for (std::uint32_t pod = 1; pod <= p.pods; ++pod) {
      double rate = p.uplink_rate_of((c - 1) * p.pods + (pod - 1));
      for (std::uint32_t t = 1; t <= tors_in(c, pod); ++t) {
        for (std::uint32_t s = 1; s <= p.spines_per_pod; ++s) {
          add_link(pod_spine_in(c, pod, s), leaf_in(c, pod, t),
                   rate * p.stripe_rate_of(s - 1));
        }
      }
    }
  }
  // 3) Hosts (server racks). Ports for these follow all router links.
  for (std::uint32_t c = 1; c <= p.clusters; ++c) {
    for (std::uint32_t pod = 1; pod <= p.pods; ++pod) {
      for (std::uint32_t t = 1; t <= tors_in(c, pod); ++t) {
        std::uint32_t leaf_idx = leaf_in(c, pod, t);
        const auto& subnet = *devices_[leaf_idx].server_subnet;
        for (std::uint32_t h = 1; h <= p.hosts_per_tor; ++h) {
          HostSpec hs;
          hs.name = cluster_prefix(c) + "H-" + std::to_string(pod) + "-" +
                    std::to_string(t) +
                    (p.hosts_per_tor > 1 ? "-" + std::to_string(h) : "");
          hs.leaf = leaf_idx;
          hs.addr = subnet.host(h);
          hs.gateway = subnet.host(254);
          hosts_.push_back(std::move(hs));
        }
      }
    }
  }
}

std::uint32_t ClosBlueprint::device_index(std::string_view name) const {
  for (std::uint32_t i = 0; i < devices_.size(); ++i) {
    if (devices_[i].name == name) return i;
  }
  throw std::out_of_range("ClosBlueprint: no device " + std::string(name));
}

std::uint32_t ClosBlueprint::tors_in(std::uint32_t cluster,
                                     std::uint32_t pod) const {
  return params_.tors_in_global_pod((cluster - 1) * params_.pods + (pod - 1));
}

std::uint32_t ClosBlueprint::leaf_in(std::uint32_t cluster, std::uint32_t pod,
                                     std::uint32_t tor) const {
  return leaf_base_[(cluster - 1) * params_.pods + (pod - 1)] + (tor - 1);
}

std::uint32_t ClosBlueprint::pod_spine_in(std::uint32_t cluster,
                                          std::uint32_t pod,
                                          std::uint32_t s) const {
  return total_tors_ +
         (cluster - 1) * params_.pods * params_.spines_per_pod +
         (pod - 1) * params_.spines_per_pod + (s - 1);
}

std::uint32_t ClosBlueprint::top_spine_in(std::uint32_t cluster,
                                          std::uint32_t t) const {
  return total_tors_ +
         params_.clusters * params_.pods * params_.spines_per_pod +
         (cluster - 1) * params_.top_spines + (t - 1);
}

std::uint32_t ClosBlueprint::super_spine(std::uint32_t q) const {
  return total_tors_ +
         params_.clusters * (params_.pods * params_.spines_per_pod +
                             params_.top_spines) +
         (q - 1);
}

std::uint32_t ClosBlueprint::leaf(std::uint32_t pod, std::uint32_t tor) const {
  return leaf_in(1, pod, tor);
}

std::uint32_t ClosBlueprint::pod_spine(std::uint32_t pod, std::uint32_t s) const {
  return pod_spine_in(1, pod, s);
}

std::uint32_t ClosBlueprint::top_spine(std::uint32_t t) const {
  return top_spine_in(1, t);
}

std::uint16_t ClosBlueprint::tor_vid_in(std::uint32_t cluster,
                                        std::uint32_t pod,
                                        std::uint32_t tor) const {
  // Sequential from 11 in leaf device order — i.e. 11 + leaf index.
  return static_cast<std::uint16_t>(11 + leaf_in(cluster, pod, tor));
}

std::uint16_t ClosBlueprint::tor_vid(std::uint32_t pod, std::uint32_t tor) const {
  return tor_vid_in(1, pod, tor);
}

std::uint32_t ClosBlueprint::port_on(std::uint32_t device,
                                     std::uint32_t link_index) const {
  const auto& order = port_order_[device];
  for (std::uint32_t i = 0; i < order.size(); ++i) {
    if (order[i] == link_index) return i + 1;
  }
  throw std::out_of_range("ClosBlueprint: device not on link");
}

std::vector<std::uint32_t> ClosBlueprint::miswired_links() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < links_.size(); ++i) {
    const DeviceSpec& up = devices_[links_[i].upper];
    const DeviceSpec& low = devices_[links_[i].lower];
    if (up.role != Role::kTopSpine || low.role != Role::kPodSpine) continue;
    if ((up.index - 1) % params_.spines_per_pod != low.index - 1) {
      out.push_back(i);
    }
  }
  return out;
}

std::uint32_t ClosBlueprint::leaf_host_port(std::uint32_t leaf_index) const {
  // Host ports follow every router link on the leaf.
  return static_cast<std::uint32_t>(port_order_[leaf_index].size()) + 1;
}

FailurePoint ClosBlueprint::failure_point(TestCase tc) const {
  std::uint32_t l11 = leaf(1, 1);
  std::uint32_t s11 = pod_spine(1, 1);
  std::uint32_t t1 = top_spine(1);

  auto find_link = [this](std::uint32_t upper, std::uint32_t lower) {
    for (std::uint32_t i = 0; i < links_.size(); ++i) {
      if (links_[i].upper == upper && links_[i].lower == lower) return i;
    }
    throw std::out_of_range("ClosBlueprint: no such link");
  };

  std::uint32_t tor_link = find_link(s11, l11);
  std::uint32_t spine_link = find_link(t1, s11);

  switch (tc) {
    case TestCase::kTC1:
      return {devices_[l11].name, port_on(l11, tor_link), devices_[s11].name};
    case TestCase::kTC2:
      return {devices_[s11].name, port_on(s11, tor_link), devices_[l11].name};
    case TestCase::kTC3:
      return {devices_[s11].name, port_on(s11, spine_link), devices_[t1].name};
    case TestCase::kTC4:
      return {devices_[t1].name, port_on(t1, spine_link), devices_[s11].name};
  }
  throw std::logic_error("unreachable");
}

util::Json ClosBlueprint::mtp_config() const {
  util::Json cfg;
  util::Json& topo = cfg["topology"];
  topo["tiers"] = util::Json(params_.four_tier() ? 4 : 3);

  util::JsonArray leaves;
  util::JsonObject leaf_ports;
  for (const auto& d : devices_) {
    if (d.role != Role::kLeaf) continue;
    leaves.emplace_back(d.name);
    leaf_ports[d.name] =
        util::Json("eth" + std::to_string(leaf_host_port(device_index(d.name))));
  }
  topo["leaves"] = util::Json(std::move(leaves));
  topo["leavesNetworkPortDict"] = util::Json(std::move(leaf_ports));

  util::JsonArray tops;
  for (const auto& d : devices_) {
    if (d.role == Role::kTopSpine) tops.emplace_back(d.name);
  }
  topo["topSpines"] = util::Json(std::move(tops));

  if (params_.four_tier()) {
    util::JsonArray supers;
    for (const auto& d : devices_) {
      if (d.role == Role::kSuperSpine) supers.emplace_back(d.name);
    }
    topo["superSpines"] = util::Json(std::move(supers));
  }

  util::JsonArray pods;
  for (std::uint32_t c = 1; c <= params_.clusters; ++c) {
    for (std::uint32_t pod = 1; pod <= params_.pods; ++pod) {
      util::Json pod_obj;
      util::JsonArray spines;
      for (std::uint32_t s = 1; s <= params_.spines_per_pod; ++s) {
        spines.emplace_back(devices_[pod_spine_in(c, pod, s)].name);
      }
      pod_obj["spines"] = util::Json(std::move(spines));
      pods.push_back(std::move(pod_obj));
    }
  }
  topo["pods"] = util::Json(std::move(pods));
  return cfg;
}

ShardPlan make_shard_plan(const ClosBlueprint& blueprint,
                          std::uint32_t shards) {
  const ClosParams& p = blueprint.params();
  std::uint32_t global_pods = p.clusters * p.pods;
  ShardPlan plan;
  plan.shards = std::clamp<std::uint32_t>(shards, 1,
                                          std::max<std::uint32_t>(global_pods, 1));
  plan.device_shard.resize(blueprint.devices().size(), 0);

  // Weigh each PoD by the devices it pins to its shard (ToRs + their hosts +
  // pod spines) and place PoDs, in order, on the currently lightest shard
  // (ties to the lowest index). With uniform PoD weights this degenerates to
  // the former global_pod % shards round-robin, so existing plans are
  // unchanged; asymmetric fabrics get balanced by router count instead of
  // whatever the PoD order happens to dictate.
  std::vector<std::uint64_t> load(plan.shards, 0);
  std::vector<std::uint32_t> pod_shard(global_pods, 0);
  for (std::uint32_t g = 0; g < global_pods; ++g) {
    std::uint32_t lightest = 0;
    for (std::uint32_t s = 1; s < plan.shards; ++s) {
      if (load[s] < load[lightest]) lightest = s;
    }
    pod_shard[g] = lightest;
    load[lightest] += p.tors_in_global_pod(g) * (1ull + p.hosts_per_tor) +
                      p.spines_per_pod;
  }

  std::uint32_t spine_rr = 0;  // round-robin cursor for pod-less tiers
  for (std::uint32_t d = 0; d < blueprint.devices().size(); ++d) {
    const DeviceSpec& spec = blueprint.device(d);
    if (spec.pod > 0) {
      std::uint32_t cluster = std::max<std::uint32_t>(spec.cluster, 1);
      plan.device_shard[d] = pod_shard[(cluster - 1) * p.pods + (spec.pod - 1)];
    } else {
      plan.device_shard[d] = spine_rr++ % plan.shards;
    }
  }
  return plan;
}

}  // namespace mrmtp::topo
