// Failure injection: the simulator's version of the paper's bash script that
// brings an interface down on the target node and records the instant (the
// convergence-time start mark, Section VI.B).
#pragma once

#include <optional>
#include <stdexcept>

#include "net/network.hpp"
#include "topo/clos.hpp"

namespace mrmtp::topo {

class FailureInjector {
 public:
  FailureInjector(net::Network& network, const ClosBlueprint& blueprint)
      : network_(network), blueprint_(blueprint) {}

  /// Schedules the TC's interface to go down at `at`. The failure point is
  /// captured by value: a later schedule_failure() cannot retarget callbacks
  /// already queued.
  void schedule_failure(TestCase tc, sim::Time at) {
    point_ = blueprint_.failure_point(tc);
    FailurePoint fp = *point_;
    // Interface state belongs to the device's shard: schedule (and stamp the
    // failure instant) on its own context so sharded runs never cross it.
    network_.find(fp.device).ctx().sched.schedule_at(at, [this, fp] {
      net::Node& node = network_.find(fp.device);
      failed_at_ = node.ctx().now();
      node.set_interface_down(fp.port);
    });
  }

  /// Schedules the failed interface to come back up at `at` (flap studies).
  /// Requires a prior schedule_failure(); throws instead of dereferencing an
  /// empty failure point.
  void schedule_recovery(sim::Time at) {
    if (!point_.has_value()) {
      throw std::logic_error(
          "FailureInjector::schedule_recovery before schedule_failure");
    }
    FailurePoint fp = *point_;
    network_.find(fp.device).ctx().sched.schedule_at(at, [this, fp] {
      network_.find(fp.device).set_interface_up(fp.port);
    });
  }

  /// Whole-router failure (§IX "extended failure test cases"): every
  /// interface of `device` goes down at `at`, like a crashed/rebooted node.
  void schedule_node_failure(const std::string& device, sim::Time at) {
    network_.find(device).ctx().sched.schedule_at(at, [this, device] {
      net::Node& node = network_.find(device);
      failed_at_ = node.ctx().now();
      for (std::uint32_t p = 1; p <= node.port_count(); ++p) {
        node.set_interface_down(p);
      }
    });
  }

  void schedule_node_recovery(const std::string& device, sim::Time at) {
    network_.find(device).ctx().sched.schedule_at(at, [this, device] {
      net::Node& node = network_.find(device);
      for (std::uint32_t p = 1; p <= node.port_count(); ++p) {
        node.set_interface_up(p);
      }
    });
  }

  /// The recorded failure instant; empty until the failure fires.
  [[nodiscard]] std::optional<sim::Time> failure_time() const { return failed_at_; }
  [[nodiscard]] const std::optional<FailurePoint>& point() const { return point_; }

 private:
  net::Network& network_;
  const ClosBlueprint& blueprint_;
  std::optional<FailurePoint> point_;
  std::optional<sim::Time> failed_at_;
};

}  // namespace mrmtp::topo
