// ChaosEngine: scheduled gray-failure campaigns on top of FailureInjector.
//
// The paper's evaluation only exercises clean failures (an interface goes
// administratively down and both sides eventually notice). Production Clos
// fabrics mostly die of gray failures instead: a link drops frames in one
// direction while hellos keep flowing the other way, optics degrade slowly,
// or an interface flaps faster than routing can damp it. The engine drives
// the per-direction Link impairments and admin up/down flaps from one seeded
// RNG so a whole campaign of such failures is reproducible, and keeps a
// timestamped log of everything it injected for reports and tests.
//
// Lifetime: scheduled events capture `this`; the engine must outlive the
// scheduler run it armed (the harness owns it for the experiment duration).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "topo/clos.hpp"
#include "topo/failure.hpp"

namespace mrmtp::topo {

/// The gray-failure modes the engine can inject.
enum class GrayKind : std::uint8_t {
  kUnidirBlackhole,   // one direction drops everything, other stays healthy
  kUnidirLoss,        // one direction drops a fraction of frames
  kDegradationRamp,   // one-way loss ramps up over time (dying optics)
  kFlapStorm,         // admin down/up toggles faster than damping
  kCorrelatedBlackhole,  // several links of one device fail together
  kCongestionStorm,   // seeded incast burst from N hosts toward one rack
  kBufferSqueeze,     // one switch's shared buffer pool shrinks (ASIC fault /
                      // co-tenant pressure); heals by restoring the pool

  // --- lifecycle events (harness::LifecycleEngine shares this timeline) ---
  kMaintenance,  // planned drain / reboot / rejoin of one router
  kExpansion,    // a dark-wired PoD powered into the running fabric
  kMisconfig,    // operator error: asymmetric admin-down, duplicate subnet
};

[[nodiscard]] std::string_view to_string(GrayKind kind);

/// Lifecycle phase of a logged chaos event. Every onset that ends (heals,
/// finishes ramping, or stops sending) also logs its terminal phase, so a
/// campaign replay can assert the full timeline, not just the injections.
enum class ChaosPhase : std::uint8_t {
  kOnset,
  kHeal,          // impairment cleared / storm stopped
  kRampComplete,  // a degradation ramp reached its target loss
};

[[nodiscard]] std::string_view to_string(ChaosPhase phase);

/// One injected event, for post-run reporting and assertions.
struct ChaosEventRecord {
  sim::Time at;
  GrayKind kind;
  ChaosPhase phase = ChaosPhase::kOnset;
  std::string description;  // "S-1-1:3 -> L-1-1 blackhole", ...
};

class ChaosEngine {
 public:
  /// Randomized-campaign parameters; all failures are drawn from the
  /// engine's seeded RNG so a campaign replays bit-identically.
  struct CampaignSpec {
    int events = 8;
    sim::Time start{};
    /// Gap between consecutive event onsets.
    sim::Duration spacing = sim::Duration::millis(400);
    /// Every impairment heals this long after onset (0 = permanent).
    sim::Duration heal_after = sim::Duration::seconds(1);
    /// Relative weights of the failure modes (need not sum to 1).
    double w_blackhole = 0.4;
    double w_loss = 0.3;
    double w_ramp = 0.1;
    double w_flap = 0.1;
    double w_correlated = 0.1;
    /// kUnidirLoss probability range.
    double loss_min = 0.3;
    double loss_max = 0.9;
    /// kFlapStorm shape: `flaps` down/up cycles, one per period.
    int flaps = 6;
    sim::Duration flap_period = sim::Duration::millis(120);
    /// kDegradationRamp: time to reach full loss.
    sim::Duration ramp_over = sim::Duration::millis(500);
    /// kCorrelatedBlackhole: links of one device failing together.
    int correlated_links = 2;
    /// kCongestionStorm weight. Defaults to 0 so existing seeded campaigns
    /// replay bit-identically; overload campaigns opt in.
    double w_congestion = 0.0;
    /// kCongestionStorm shape (see StormSpec).
    int storm_senders = 6;
    sim::Duration storm_gap = sim::Duration::micros(30);
    std::size_t storm_payload = 1000;
    /// kBufferSqueeze weight. Defaults to 0 so existing seeded campaigns
    /// replay bit-identically; finite-buffer campaigns opt in. A squeeze on
    /// a fabric without switch buffers is a logged no-op.
    double w_squeeze = 0.0;
    /// kBufferSqueeze shape: the pool shrinks to this fraction until heal.
    double squeeze_frac = 0.25;
  };

  /// Incast-burst parameters for congestion_storm().
  struct StormSpec {
    /// Hosts (from other racks) that each open a flow toward the victim.
    int senders = 6;
    /// How long the burst lasts; flows stop (and the heal record logs) then.
    sim::Duration duration = sim::Duration::millis(500);
    /// Per-sender inter-packet gap; small values saturate the victim paths.
    sim::Duration gap = sim::Duration::micros(30);
    std::size_t payload_size = 1000;
  };

  ChaosEngine(net::Network& network, const ClosBlueprint& blueprint,
              std::uint64_t seed);

  // --- targeted injections (FailurePoint names the impaired interface) ---
  /// Blackholes one direction of the link at `fp` starting at `at`.
  /// `toward_device` drops frames arriving AT fp.device (so fp.device's
  /// keep-alive starves and it is the side that should detect); false drops
  /// frames it sends (the peer starves).
  void blackhole_one_way(const FailurePoint& fp, bool toward_device,
                         sim::Time at);
  void loss_one_way(const FailurePoint& fp, bool toward_device, double p,
                    sim::Time at);
  void degradation_ramp(const FailurePoint& fp, bool toward_device,
                        double target, sim::Time at, sim::Duration over);
  /// `flaps` admin down/up cycles of fp's interface, one per `period`.
  void flap_storm(const FailurePoint& fp, sim::Time at, int flaps,
                  sim::Duration period);
  /// Simultaneous one-way blackholes on up to `links` interfaces of
  /// `device` (correlated failure: a bad linecard / fan tray).
  void correlated_blackhole(const std::string& device, int links,
                            sim::Time at);
  /// Heals both directions of the link at `fp` at `at`. `healed` labels the
  /// heal record with the onset kind it terminates.
  void heal(const FailurePoint& fp, sim::Time at,
            GrayKind healed = GrayKind::kUnidirBlackhole);

  /// Seeded incast burst: `spec.senders` hosts drawn from other racks each
  /// open a probe flow toward one victim host (also drawn seeded), swamping
  /// the fabric directions into its rack. Composable with the gray modes —
  /// the overload analogue of a blackhole. The victim is returned so a bench
  /// can read its sink stats.
  std::string congestion_storm(const StormSpec& spec, sim::Time at);

  /// Shrinks `device`'s shared buffer pool to `frac` of its configured size
  /// at `at`, restoring it `heal_after` later (0 = permanent). Models an
  /// ASIC memory fault or co-tenant buffer pressure. Returns the device name
  /// ("" if it has no SwitchBuffer — the injection is skipped).
  std::string buffer_squeeze(const std::string& device, double frac,
                             sim::Time at, sim::Duration heal_after);

  /// Schedules `spec.events` randomized gray failures over the fabric links
  /// (host links are never touched), each healing after `heal_after`.
  void run_campaign(const CampaignSpec& spec);

  /// Everything injected so far (scheduled, in onset order).
  [[nodiscard]] const std::vector<ChaosEventRecord>& log() const {
    return log_;
  }
  /// Appends an externally produced record (the lifecycle engine logs its
  /// maintenance/expansion/misconfig events into the same timeline so a run
  /// mixing chaos and lifecycle reads as one chronology).
  void append_event(ChaosEventRecord event) {
    log_.push_back(std::move(event));
  }
  /// Onset of the first scheduled event (the detection-latency start mark).
  [[nodiscard]] std::optional<sim::Time> first_onset() const;

  /// The link carrying fp.device's fp.port (throws if unwired).
  [[nodiscard]] net::Link& link_of(const FailurePoint& fp) const;
  /// The transmission direction frames travel toward (or away from)
  /// fp.device on that link.
  [[nodiscard]] net::Link::Dir dir_of(const FailurePoint& fp,
                                      bool toward_device) const;

 private:
  void record(sim::Time at, GrayKind kind, ChaosPhase phase,
              std::string description);
  /// A random fabric link as a FailurePoint anchored on its lower device.
  [[nodiscard]] FailurePoint random_fabric_point();

  net::Network& network_;
  const ClosBlueprint& blueprint_;
  sim::Rng rng_;
  std::vector<ChaosEventRecord> log_;
};

}  // namespace mrmtp::topo
