// Shared hashing primitives for the forwarding hot paths.
//
// mix64 is the splitmix64 finalizer: a cheap bijective scrambler whose output
// bits all depend on all input bits, unlike the multiply-shift folklore hashes
// that collide systematically on structured keys (aligned subnets, sequential
// port numbers).
//
// hrw_pick implements rendezvous (highest-random-weight) hashing over a
// candidate set: every (flow, member) pair gets an independent weight and the
// flow goes to the member with the highest one. When a member disappears only
// the flows whose winner it was move — the property `hash % n` lacks, where
// removing one member remaps (n-1)/n of all flows (paper §III.C's stable
// load balancing; cf. FatPaths' flow-stability requirement).
#pragma once

#include <cstddef>
#include <cstdint>

namespace mrmtp::util {

[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Rendezvous weight of `member` for `flow`.
[[nodiscard]] constexpr std::uint64_t hrw_weight(std::uint64_t flow,
                                                 std::uint64_t member) {
  return mix64(flow ^ mix64(member));
}

/// Index of the HRW winner among `n` candidates whose keys are produced by
/// `key_of(i)`; `n` must be > 0. Ties break toward the lower index, which
/// cannot happen between distinct keys (mix64 is bijective) but keeps the
/// pick deterministic if a caller passes duplicates.
template <typename KeyOf>
[[nodiscard]] std::size_t hrw_pick(std::uint64_t flow, std::size_t n,
                                   KeyOf&& key_of) {
  std::size_t best = 0;
  std::uint64_t best_w = hrw_weight(flow, key_of(std::size_t{0}));
  for (std::size_t i = 1; i < n; ++i) {
    std::uint64_t w = hrw_weight(flow, key_of(i));
    if (w > best_w) {
      best_w = w;
      best = i;
    }
  }
  return best;
}

}  // namespace mrmtp::util
