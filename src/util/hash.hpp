// Shared hashing primitives for the forwarding hot paths.
//
// mix64 is the splitmix64 finalizer: a cheap bijective scrambler whose output
// bits all depend on all input bits, unlike the multiply-shift folklore hashes
// that collide systematically on structured keys (aligned subnets, sequential
// port numbers).
//
// hrw_pick implements rendezvous (highest-random-weight) hashing over a
// candidate set: every (flow, member) pair gets an independent weight and the
// flow goes to the member with the highest one. When a member disappears only
// the flows whose winner it was move — the property `hash % n` lacks, where
// removing one member remaps (n-1)/n of all flows (paper §III.C's stable
// load balancing; cf. FatPaths' flow-stability requirement).
//
// hrw_pick_weighted is the WCMP extension: each member carries a capacity
// weight w_i and wins with probability w_i / Σw while keeping the HRW
// stability property. It uses the score transform of Weighted Rendezvous
// Hashing: score_i = -w_i / ln(u_i) with u_i the member's hash mapped into
// (0,1). hrw_pick_replicated is the integer-replication fallback (member i
// entered w_i times under distinct virtual keys) — exact for small integer
// weights and float-free, but O(Σw) instead of O(n).
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mrmtp::util {

/// Multipath path-selection policy, threaded from deploy options down into
/// ip::RouteTable users and mtp::MtpRouter forwarding.
enum class PathSelect : std::uint8_t {
  kHrw,          // equal-share rendezvous hashing (PR 2 behavior; default)
  kWcmp,         // capacity-weighted rendezvous hashing
  kWcmpFlowlet,  // WCMP + flowlet-granularity rerouting w/ congestion feedback
};

[[nodiscard]] constexpr std::string_view to_string(PathSelect m) {
  switch (m) {
    case PathSelect::kHrw: return "hrw";
    case PathSelect::kWcmp: return "wcmp";
    case PathSelect::kWcmpFlowlet: return "wcmp+flowlet";
  }
  return "?";
}

[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Rendezvous weight of `member` for `flow`.
[[nodiscard]] constexpr std::uint64_t hrw_weight(std::uint64_t flow,
                                                 std::uint64_t member) {
  return mix64(flow ^ mix64(member));
}

/// Index of the HRW winner among `n` candidates whose keys are produced by
/// `key_of(i)`; `n` must be > 0. Ties break toward the lower index, which
/// cannot happen between distinct keys (mix64 is bijective) but keeps the
/// pick deterministic if a caller passes duplicates.
template <typename KeyOf>
[[nodiscard]] std::size_t hrw_pick(std::uint64_t flow, std::size_t n,
                                   KeyOf&& key_of) {
  std::size_t best = 0;
  std::uint64_t best_w = hrw_weight(flow, key_of(std::size_t{0}));
  for (std::size_t i = 1; i < n; ++i) {
    std::uint64_t w = hrw_weight(flow, key_of(i));
    if (w > best_w) {
      best_w = w;
      best = i;
    }
  }
  return best;
}

/// Maps a 64-bit hash onto the open interval (0,1). The top 53 bits become
/// the mantissa and the +0.5 offset keeps the result strictly inside the
/// interval, so ln(u) below is always finite and negative.
[[nodiscard]] constexpr double hash_unit(std::uint64_t h) {
  return (static_cast<double>(h >> 11) + 0.5) * 0x1.0p-53;
}

/// Weighted rendezvous pick: member i wins with probability
/// weight_of(i) / Σ weight_of(j) via the score transform
/// score_i = -w_i / ln(u_i). Members with weight <= 0 are never chosen;
/// if every weight is <= 0 the pick degenerates to plain hrw_pick so a
/// fully-discounted candidate set still forwards instead of blackholing.
/// Deterministic: IEEE doubles, same inputs -> same winner on every shard.
template <typename KeyOf, typename WeightOf>
[[nodiscard]] std::size_t hrw_pick_weighted(std::uint64_t flow, std::size_t n,
                                            KeyOf&& key_of,
                                            WeightOf&& weight_of) {
  std::size_t best = n;  // sentinel: no positive-weight member seen yet
  double best_score = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = static_cast<double>(weight_of(i));
    if (!(w > 0.0)) continue;
    const double u = hash_unit(hrw_weight(flow, key_of(i)));
    const double score = -w / std::log(u);  // ln(u) < 0, so score > 0
    if (best == n || score > best_score) {
      best = i;
      best_score = score;
    }
  }
  if (best == n) return hrw_pick(flow, n, key_of);
  return best;
}

/// Integer-weight replication fallback: member i is entered weight_of(i)
/// times under distinct virtual keys and the plain HRW maximum wins. Exact
/// w_i/Σw split without floating point, at O(Σ weights) cost — use for small
/// weights (tests, verification); the hot paths use hrw_pick_weighted.
template <typename KeyOf, typename WeightOf>
[[nodiscard]] std::size_t hrw_pick_replicated(std::uint64_t flow,
                                              std::size_t n, KeyOf&& key_of,
                                              WeightOf&& weight_of) {
  std::size_t best = n;
  std::uint64_t best_w = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t replicas = weight_of(i);
    const std::uint64_t base = mix64(key_of(i));
    for (std::uint64_t r = 0; r < replicas; ++r) {
      const std::uint64_t w = hrw_weight(flow, base + r);
      if (best == n || w > best_w) {
        best = i;
        best_w = w;
      }
    }
  }
  if (best == n) return hrw_pick(flow, n, key_of);
  return best;
}

}  // namespace mrmtp::util
