// Minimal JSON document model, emitter, and parser.
//
// Used for the MR-MTP topology configuration file (paper Listing 2) and for
// machine-readable experiment output. Objects preserve insertion order so
// emitted configuration is deterministic and diffable.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace mrmtp::util {

class Json;

using JsonArray = std::vector<Json>;
using JsonMember = std::pair<std::string, Json>;

/// Insertion-ordered JSON object.
class JsonObject {
 public:
  Json& operator[](std::string_view key);
  [[nodiscard]] const Json* find(std::string_view key) const;
  [[nodiscard]] bool contains(std::string_view key) const;
  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] bool empty() const { return members_.empty(); }
  [[nodiscard]] auto begin() const { return members_.begin(); }
  [[nodiscard]] auto end() const { return members_.end(); }

 private:
  std::vector<JsonMember> members_;
};

/// A JSON value: null, bool, integer, double, string, array, or object.
/// Integers are kept distinct from doubles so port numbers and tier values
/// round-trip exactly.
class Json {
 public:
  Json() = default;
  Json(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Json(bool b) : value_(b) {}  // NOLINT(google-explicit-constructor)
  Json(int v) : value_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Json(std::int64_t v) : value_(v) {}   // NOLINT(google-explicit-constructor)
  Json(double v) : value_(v) {}         // NOLINT(google-explicit-constructor)
  Json(const char* s) : value_(std::string(s)) {}  // NOLINT
  Json(std::string s) : value_(std::move(s)) {}    // NOLINT
  Json(JsonArray a) : value_(std::move(a)) {}      // NOLINT
  Json(JsonObject o) : value_(std::move(o)) {}     // NOLINT

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::monostate>(value_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(value_); }
  [[nodiscard]] bool is_int() const { return std::holds_alternative<std::int64_t>(value_); }
  [[nodiscard]] bool is_double() const { return std::holds_alternative<double>(value_); }
  [[nodiscard]] bool is_number() const { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(value_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(value_); }
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(value_); }
  [[nodiscard]] const JsonArray& as_array() const { return std::get<JsonArray>(value_); }
  [[nodiscard]] const JsonObject& as_object() const { return std::get<JsonObject>(value_); }
  JsonArray& as_array() { return std::get<JsonArray>(value_); }
  JsonObject& as_object() { return std::get<JsonObject>(value_); }

  /// Member access; creates the object/member as needed (like nlohmann).
  Json& operator[](std::string_view key);
  [[nodiscard]] const Json* find(std::string_view key) const;

  /// Serializes with 2-space indentation when `pretty`, compact otherwise.
  [[nodiscard]] std::string dump(bool pretty = true) const;

  /// Parses a JSON document. Throws CodecError (see byte_io.hpp) on syntax
  /// errors with a character-offset message.
  static Json parse(std::string_view text);

 private:
  std::variant<std::monostate, bool, std::int64_t, double, std::string,
               JsonArray, JsonObject>
      value_;
};

}  // namespace mrmtp::util
