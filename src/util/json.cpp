#include "util/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/byte_io.hpp"

namespace mrmtp::util {

Json& JsonObject::operator[](std::string_view key) {
  for (auto& [k, v] : members_) {
    if (k == key) return v;
  }
  members_.emplace_back(std::string(key), Json());
  return members_.back().second;
}

const Json* JsonObject::find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool JsonObject::contains(std::string_view key) const {
  return find(key) != nullptr;
}

std::int64_t Json::as_int() const {
  if (is_int()) return std::get<std::int64_t>(value_);
  if (is_double()) return static_cast<std::int64_t>(std::get<double>(value_));
  throw CodecError("Json::as_int on non-number");
}

double Json::as_double() const {
  if (is_double()) return std::get<double>(value_);
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(value_));
  throw CodecError("Json::as_double on non-number");
}

Json& Json::operator[](std::string_view key) {
  if (is_null()) value_ = JsonObject{};
  if (!is_object()) throw CodecError("Json::operator[] on non-object");
  return as_object()[key];
}

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  return as_object().find(key);
}

namespace {

void escape_to(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_to(std::string& out, const Json& j, bool pretty, int depth) {
  auto indent = [&](int d) {
    if (pretty) out.append(static_cast<std::size_t>(d) * 2, ' ');
  };
  auto newline = [&] {
    if (pretty) out.push_back('\n');
  };

  if (j.is_null()) {
    out += "null";
  } else if (j.is_bool()) {
    out += j.as_bool() ? "true" : "false";
  } else if (j.is_int()) {
    out += std::to_string(j.as_int());
  } else if (j.is_double()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", j.as_double());
    out += buf;
  } else if (j.is_string()) {
    escape_to(out, j.as_string());
  } else if (j.is_array()) {
    const auto& arr = j.as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    newline();
    for (std::size_t i = 0; i < arr.size(); ++i) {
      indent(depth + 1);
      dump_to(out, arr[i], pretty, depth + 1);
      if (i + 1 < arr.size()) out.push_back(',');
      newline();
    }
    indent(depth);
    out.push_back(']');
  } else {
    const auto& obj = j.as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    newline();
    std::size_t i = 0;
    for (const auto& [k, v] : obj) {
      indent(depth + 1);
      escape_to(out, k);
      out += pretty ? ": " : ":";
      dump_to(out, v, pretty, depth + 1);
      if (++i < obj.size()) out.push_back(',');
      newline();
    }
    indent(depth);
    out.push_back('}');
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw CodecError("JSON parse error at offset " + std::to_string(pos_) +
                     ": " + msg);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("bad literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      char c = next();
      if (c == '}') return Json(std::move(obj));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      char c = next();
      if (c == ']') return Json(std::move(arr));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = next();
      if (c == '"') return out;
      if (c == '\\') {
        char esc = next();
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            // UTF-8 encode (BMP only; surrogate pairs not needed for config).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xc0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            } else {
              out.push_back(static_cast<char>(0xe0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            }
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out.push_back(c);
      }
    }
  }

  Json parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    if (is_double) {
      return Json(std::strtod(token.c_str(), nullptr));
    }
    return Json(static_cast<std::int64_t>(std::strtoll(token.c_str(), nullptr, 10)));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Json::dump(bool pretty) const {
  std::string out;
  dump_to(out, *this, pretty, 0);
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace mrmtp::util
