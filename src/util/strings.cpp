#include "util/strings.hpp"

#include <cctype>
#include <cstdint>

namespace mrmtp::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;  // overflow
    v = v * 10 + digit;
  }
  out = v;
  return true;
}

}  // namespace mrmtp::util
