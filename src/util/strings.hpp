// Small string utilities shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mrmtp::util {

/// Splits `s` on `sep`, keeping empty fields ("a..b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view s, char sep);

/// Joins `parts` with `sep` between elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Parses a non-negative decimal integer; returns false on any non-digit or
/// empty input. Accepts values up to 2^64-1.
bool parse_u64(std::string_view s, std::uint64_t& out);

}  // namespace mrmtp::util
