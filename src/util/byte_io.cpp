#include "util/byte_io.hpp"

#include <array>

namespace mrmtp::util {

namespace {
constexpr std::array<char, 16> kHex = {'0', '1', '2', '3', '4', '5', '6', '7',
                                       '8', '9', 'a', 'b', 'c', 'd', 'e', 'f'};
}  // namespace

std::string hex_dump(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve(data.size() * 4 + 64);
  for (std::size_t row = 0; row < data.size(); row += 16) {
    // Offset column.
    std::uint32_t off = static_cast<std::uint32_t>(row);
    for (int shift = 12; shift >= 0; shift -= 4) {
      out.push_back(kHex[(off >> shift) & 0xf]);
    }
    out += "  ";
    std::size_t end = std::min(row + 16, data.size());
    for (std::size_t i = row; i < row + 16; ++i) {
      if (i < end) {
        out.push_back(kHex[data[i] >> 4]);
        out.push_back(kHex[data[i] & 0xf]);
        out.push_back(' ');
      } else {
        out += "   ";
      }
      if (i == row + 7) out.push_back(' ');
    }
    out += " |";
    for (std::size_t i = row; i < end; ++i) {
      char c = static_cast<char>(data[i]);
      out.push_back((c >= 0x20 && c < 0x7f) ? c : '.');
    }
    out += "|\n";
  }
  return out;
}

std::string hex_string(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

}  // namespace mrmtp::util
