// Big-endian (network byte order) serialization cursors.
//
// All wire formats in this project (Ethernet, IPv4, UDP, TCP-lite, BGP, BFD,
// MTP) serialize through BufWriter and parse through BufReader so that every
// "bytes on the wire" metric counts real serialized bytes.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mrmtp::util {

/// Error thrown when a BufReader runs past the end of its buffer or a
/// decoded value is structurally invalid.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends integers and byte ranges to a growable buffer in network order.
class BufWriter {
 public:
  BufWriter() = default;
  explicit BufWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
  }

  void u32(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 24));
    buf_.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
    buf_.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
    buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
  }

  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v & 0xffffffffu));
  }

  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  void bytes(const void* data, std::size_t len) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + len);
  }

  /// Appends `count` zero bytes (padding / reserved fields).
  void zeros(std::size_t count) { buf_.insert(buf_.end(), count, 0); }

  /// Overwrites a previously written big-endian u16 at `offset`; used for
  /// length fields whose value is only known after the body is serialized.
  void patch_u16(std::size_t offset, std::uint16_t v) {
    if (offset + 2 > buf_.size()) throw CodecError("patch_u16 out of range");
    buf_[offset] = static_cast<std::uint8_t>(v >> 8);
    buf_[offset + 1] = static_cast<std::uint8_t>(v & 0xff);
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Reads integers and byte ranges from a fixed buffer in network order.
/// Throws CodecError on any overrun so malformed frames cannot be half-read.
class BufReader {
 public:
  explicit BufReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] bool empty() const { return remaining() == 0; }

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint16_t u16() {
    need(2);
    auto v = static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                      (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                      (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                      static_cast<std::uint32_t>(data_[pos_ + 3]);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    std::uint64_t hi = u32();
    std::uint64_t lo = u32();
    return (hi << 32) | lo;
  }

  std::span<const std::uint8_t> bytes(std::size_t len) {
    need(len);
    auto out = data_.subspan(pos_, len);
    pos_ += len;
    return out;
  }

  /// Consumes and returns everything left in the buffer.
  std::span<const std::uint8_t> rest() { return bytes(remaining()); }

  void skip(std::size_t len) { need(len), pos_ += len; }

 private:
  void need(std::size_t len) const {
    if (pos_ + len > data_.size()) {
      throw CodecError("BufReader overrun: need " + std::to_string(len) +
                       " bytes, have " + std::to_string(data_.size() - pos_));
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Renders bytes as a wireshark-style hex dump ("0000  ff ff ...  |....|").
std::string hex_dump(std::span<const std::uint8_t> data);

/// Renders bytes as a compact hex string ("ff02ab...").
std::string hex_string(std::span<const std::uint8_t> data);

}  // namespace mrmtp::util
